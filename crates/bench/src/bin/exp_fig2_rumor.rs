//! Figure 2 regenerator: rounds to spread a single rumor.
//!
//! Paper: n from 10 to 10⁵; algorithms PUSH, PULL, PUSH&PULL, fair PULL,
//! fair PUSH&PULL, dating service; 10⁴ runs (10³ for large n). Expected
//! ordering fastest→slowest: push-pull, push-fair-pull, pull, fair-pull,
//! push, dating; dating < 2× push-fair-pull.
//!
//! Engines: the default runs the legacy centralized samplers
//! (`rendez_gossip`); `--runtime` reproduces the figure entirely on the
//! message-passing runtime via the `Scenario` builder, and `--churn P`
//! additionally runs every protocol with each node down a fraction `P`
//! of rounds (source protected) — a variant only the runtime supports.
//! The runtime/churn table is scheduled onto one persistent
//! Monte-Carlo fleet (`rendez_fleet`): each row is a single-`n`
//! `SweepSpec` over all six algorithms, so thread spawn cost is paid
//! once for the whole table and per-trial results stream through
//! Welford accumulators instead of being materialized.
//!
//! Usage: `exp_fig2_rumor [--quick|--full] [--runtime] [--churn P]
//!         [--seed S] [--threads T] [--trials T] [--csv]`
//!
//! `--threads T` sizes the fleet's worker pool for the runtime engine
//! (0 = one per core) and the trial parallelism for the legacy engine.
//!
//! `--trials T` overrides the scaled per-point trial count — the paper-
//! scale churn sweep (`--runtime --n 100000 --churn P --trials 5`) runs
//! million-node-message workloads where a handful of trials already
//! separates the churn levels cleanly.

use rendez_bench::experiments::fig2::{rumor_point, rumor_row_fleet, Algo};
use rendez_bench::{table, CliArgs, Table};
use rendez_fleet::Fleet;

fn main() {
    let args = CliArgs::parse();
    let seed = args.get_u64("seed", 0xF162);
    let threads = args.get_u64("threads", 0) as usize;
    let churn = args.get_f64("churn", 0.0);
    let runtime = args.has("runtime") || churn > 0.0;
    let default_ns: Vec<usize> = if args.has("quick") {
        vec![10, 100, 1000]
    } else {
        vec![10, 100, 1000, 10_000, 100_000]
    };
    let ns = args.get_usize_list("n", &default_ns);

    println!("# Figure 2 — rounds to spread a single rumor (mean ± sd)");
    println!(
        "# seed={seed} scale={} engine={}{}",
        args.scale(),
        if runtime {
            "runtime (Scenario grid on the Monte-Carlo fleet)"
        } else {
            "legacy (centralized samplers)"
        },
        if churn > 0.0 {
            format!(", churn: each node down {:.0}% of rounds", churn * 100.0)
        } else {
            String::new()
        }
    );
    let mut headers = vec!["n".to_string(), "trials".to_string()];
    headers.extend(Algo::ALL.iter().map(|a| a.name().to_string()));
    let mut t = Table::new(headers, args.has("csv"));

    // One pool for the whole table: every runtime row reuses the same
    // parked worker threads via the fleet engine.
    let fleet = if runtime {
        Some(Fleet::new(threads))
    } else {
        None
    };
    for &n in &ns {
        let paper_trials: u64 = if n >= 10_000 { 1_000 } else { 10_000 };
        let trials = args.get_u64("trials", args.scaled_trials(paper_trials, 30));
        let mut row = vec![n.to_string(), trials.to_string()];
        if let Some(fleet) = &fleet {
            for (_, s) in rumor_row_fleet(fleet, n, trials, seed ^ n as u64, churn) {
                row.push(table::pm(s.mean, s.std_dev, 1));
            }
        } else {
            for &a in &Algo::ALL {
                let s = rumor_point(a, n, trials, seed ^ n as u64, threads);
                row.push(table::pm(s.mean, s.std_dev, 1));
            }
        }
        t.row(row);
    }
    t.print();
    println!("# paper ordering: push-pull < push-fair-pull < pull < fair-pull < push < dating");
    println!("# paper claim: dating < 2x the bandwidth-honest baselines (push, fair-pull)");
    if let Some(fleet) = &fleet {
        println!(
            "# fleet: one SweepSpec row per n, {} persistent workers, \
             streaming Welford aggregation",
            fleet.size()
        );
    }
}
