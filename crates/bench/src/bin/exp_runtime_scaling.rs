//! Runtime scaling experiment: sequential vs sharded execution of the
//! dating-service rumor spread at large `n`.
//!
//! Verifies the runtime's headline property end to end — the sharded
//! executor is **reproducible** (same seed → identical round count, final
//! informed set and per-round informed-set digest trace as the sequential
//! reference) — while measuring the wall-clock speedup sharding buys.
//!
//! Usage: `exp_runtime_scaling [--quick] [--n N] [--seed S]
//!         [--shards 2,4,8] [--csv]`
//!
//! Defaults run the paper-scale `n = 10⁵` spread; `--quick` drops to
//! `n = 10⁴` for CI.

use rendez_bench::{CliArgs, Table};
use rendez_core::{Platform, UniformSelector};
use rendez_runtime::{
    Executor, RtDatingSpread, RunConfig, RunReport, SequentialExecutor, ShardedExecutor,
    SpreadRunSummary,
};
use rendez_sim::NodeId;
use std::time::Instant;

fn spread_run<E: Executor>(exec: &E, n: usize, seed: u64) -> (RunReport<SpreadRunSummary>, f64) {
    let mut proto = RtDatingSpread::new(Platform::unit(n), UniformSelector::new(n), NodeId(0));
    let start = Instant::now();
    let report = exec.run(&mut proto, n, &RunConfig::seeded(seed).max_rounds(10_000));
    (report, start.elapsed().as_secs_f64())
}

fn main() {
    let args = CliArgs::parse();
    let n = args.get_u64("n", if args.has("quick") { 10_000 } else { 100_000 }) as usize;
    let seed = args.get_u64("seed", 0x5CA1E);
    let shard_counts = args.get_usize_list("shards", &[2, 4, 8]);
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    println!("# Runtime scaling — dating-service rumor spread, sequential vs sharded");
    println!("# n={n} seed={seed:#x} cores={cores}");

    let mut t = Table::new(
        vec![
            "executor", "rounds", "informed", "wall_s", "speedup", "trace",
        ],
        args.has("csv"),
    );

    let (seq, seq_wall) = spread_run(&SequentialExecutor, n, seed);
    let seq_out = seq.output.clone().expect("sequential run must complete");
    t.row(vec![
        "sequential".to_string(),
        seq.rounds.to_string(),
        seq_out.final_informed().to_string(),
        format!("{seq_wall:.3}"),
        "1.00".to_string(),
        "reference".to_string(),
    ]);

    let mut all_identical = true;
    for &shards in &shard_counts {
        let exec = ShardedExecutor::new(shards);
        let (sh, wall) = spread_run(&exec, n, seed);
        let out = sh.output.clone().expect("sharded run must complete");
        let identical = sh.rounds == seq.rounds
            && sh.digests == seq.digests
            && out.informed_history == seq_out.informed_history;
        all_identical &= identical;
        t.row(vec![
            exec.name(),
            sh.rounds.to_string(),
            out.final_informed().to_string(),
            format!("{wall:.3}"),
            format!("{:.2}", seq_wall / wall),
            if identical { "identical" } else { "DIVERGED" }.to_string(),
        ]);
    }
    t.print();

    println!(
        "# determinism: {}",
        if all_identical {
            "every sharded run reproduced the sequential informed-set trace bit-for-bit"
        } else {
            "FAILURE: executor traces diverged"
        }
    );
    assert!(all_identical, "sharded executor diverged from sequential");
}
