//! Runtime scaling experiment: sequential vs sharded execution at large
//! `n`, plus the full-registry determinism gate and the recorded perf
//! baseline.
//!
//! Three sections:
//!
//! 1. **Scaling** — the dating-service rumor spread at paper scale
//!    (`n = 10⁵`), sequential vs sharded, measuring wall-clock speedup
//!    and message throughput while verifying the headline property end
//!    to end: same seed → identical round count, informed history and
//!    per-round digest trace.
//! 2. **Determinism gate** — every workload in the [`Spreader`] registry
//!    (dating service + all seven Figure-2 spreaders), with and without
//!    churn, run through the [`Scenario`] builder on the sequential and
//!    sharded executors; every report must be bit-identical.
//! 3. **Recorded baseline** — `--bench-out PATH` additionally writes
//!    machine-readable records (ns/round, msgs/sec per
//!    `{workload, n, shards}`) so the hot path's perf trajectory is
//!    tracked across PRs; see `BENCH_runtime.json` and `EXPERIMENTS.md`.
//! 4. **n-scaling series** (`--n-series`) — the millions-of-nodes tier:
//!    the dating-spread workload at each `--series-n` point (default
//!    `10⁵` and `10⁶`), sequential plus every `--series-shards` count,
//!    exercising the streaming per-shard finalize and arena-backed node
//!    state. Each point verifies digest-trace identity across
//!    executors and records ns/round, msgs/sec and resident bytes/node
//!    into the `scaling` series of the benchmark file. Points whose
//!    estimated footprint exceeds `MemAvailable` are skipped.
//! 5. **Async determinism gate** (`--time-model continuous`) — every
//!    workload with a continuous-time port, run through the
//!    event-driven [`EventExecutor`] at wake-queue lane counts
//!    {1, 2, 8}; the event trace must be bit-identical across lane
//!    counts, and each `{workload, lanes}` cell records events/sec and
//!    ns/event into the `async_events` series of the benchmark file.
//!
//! Usage: `exp_runtime_scaling [--quick] [--n N] [--seed S]
//!         [--shards 2,4,8] [--gate-n N] [--bench-out PATH]
//!         [--n-series] [--series-n 100000,1000000]
//!         [--series-shards 1,2,8] [--series-floor MSGS_PER_SEC]
//!         [--time-model continuous] [--async-n N] [--csv]`
//!
//! `--series-floor` turns the n-scaling series into a perf regression
//! gate: every regenerated scaling point must sustain at least the
//! given msgs/sec (CI pins this to the pre-refactor throughput of the
//! message plane at the smoke-test `n`, so a hot-path regression fails
//! the job instead of silently shipping).
//!
//! Defaults run the paper-scale `n = 10⁵` spread; `--quick` drops to
//! `n = 10⁴` for CI.

use rendez_bench::{
    load_bench_json, write_bench_json, AsyncEventsRecord, BenchRecord, CliArgs, ScalingRecord,
    Table,
};
use rendez_runtime::{
    AsyncSpread, AsyncSpreadSummary, Churn, EventExecutor, RunConfig, RunReport, Scenario,
    ScenarioReport, Spreader,
};
use rendez_sim::NodeId;
use std::time::Instant;

fn timed_run(scenario: &Scenario, seed: u64) -> (ScenarioReport, f64) {
    let start = Instant::now();
    let report = scenario.run(seed).expect("scenario must validate");
    (report, start.elapsed().as_secs_f64())
}

fn identical(a: &ScenarioReport, b: &ScenarioReport) -> bool {
    a.rounds == b.rounds && a.digests == b.digests && a.stats == b.stats && a.output == b.output
}

fn record(workload: &str, n: usize, shards: usize, r: &ScenarioReport, wall_s: f64) -> BenchRecord {
    BenchRecord {
        workload: workload.to_string(),
        n,
        shards,
        rounds: r.rounds,
        wall_s,
        msgs_sent: r.stats.sent,
        msgs_delivered: r.stats.delivered,
    }
}

/// Per-node resident-footprint estimate used by the memory gate:
/// node state plus arena lanes plus in-flight envelopes. Deliberately
/// generous — skipping a point is cheaper than thrashing swap.
const EST_BYTES_PER_NODE: u64 = 256;

/// `MemAvailable` from `/proc/meminfo`, in bytes. `None` (non-Linux or
/// unreadable) disables the memory gate.
fn available_mem_bytes() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/meminfo").ok()?;
    let line = text.lines().find(|l| l.starts_with("MemAvailable:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn scaling_point(n: usize, shards: usize, r: &ScenarioReport, wall_s: f64) -> ScalingRecord {
    ScalingRecord {
        workload: Spreader::Dating.name().to_string(),
        n,
        shards,
        rounds: r.rounds,
        wall_s,
        msgs_sent: r.stats.sent,
        node_bytes: r.node_bytes,
    }
}

fn main() {
    let args = CliArgs::parse();
    let n = args.get_u64("n", if args.has("quick") { 10_000 } else { 100_000 }) as usize;
    let gate_n = args.get_u64("gate-n", if args.has("quick") { 1_500 } else { 4_000 }) as usize;
    let seed = args.get_u64("seed", 0x5CA1E);
    let shard_counts = args.get_usize_list("shards", &[2, 4, 8]);
    let bench_out = args.get_str("bench-out", "");
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut records: Vec<BenchRecord> = Vec::new();

    println!("# Runtime scaling — dating-service rumor spread, sequential vs sharded");
    println!("# n={n} seed={seed:#x} cores={cores}");
    if cores == 1 {
        println!(
            "# note: single-core host — sharded rows measure the zero-coordinator \
             hot path against the sequential reference (the counting-bucket \
             delivery pass usually wins even without parallelism); rerun on a \
             >= 4-core host for the parallel speedup numbers"
        );
    }

    let mut t = Table::new(
        vec![
            "executor", "rounds", "informed", "wall_s", "speedup", "Mmsg/s", "trace",
        ],
        args.has("csv"),
    );

    let scaling = Scenario::new(n).protocol(Spreader::Dating);
    let (seq, seq_wall) = timed_run(&scaling, seed);
    let seq_out = seq.output.clone().expect("sequential run must complete");
    let seq_rec = record("dating", n, 0, &seq, seq_wall);
    t.row(vec![
        scaling.executor_name(),
        seq.rounds.to_string(),
        seq_out
            .spread()
            .expect("spread")
            .final_informed()
            .to_string(),
        format!("{seq_wall:.3}"),
        "1.00".to_string(),
        format!("{:.2}", seq_rec.msgs_per_sec() / 1e6),
        "reference".to_string(),
    ]);
    records.push(seq_rec);

    let mut all_identical = true;
    for &shards in &shard_counts {
        let sharded = scaling.clone().sharded(shards);
        let (sh, wall) = timed_run(&sharded, seed);
        let same = identical(&seq, &sh);
        all_identical &= same;
        let rec = record("dating", n, shards, &sh, wall);
        t.row(vec![
            sharded.executor_name(),
            sh.rounds.to_string(),
            sh.output
                .as_ref()
                .and_then(|o| o.spread())
                .expect("sharded run must complete")
                .final_informed()
                .to_string(),
            format!("{wall:.3}"),
            format!("{:.2}", seq_wall / wall),
            format!("{:.2}", rec.msgs_per_sec() / 1e6),
            if same { "identical" } else { "DIVERGED" }.to_string(),
        ]);
        records.push(rec);
    }
    t.print();

    // ---- Determinism gate: all eight workloads, with and without churn.
    let gate_shards = *shard_counts.iter().max().unwrap_or(&4);
    println!();
    println!(
        "# Determinism gate — every registry workload via Scenario, n={gate_n}, \
         sequential vs sharded({gate_shards}), ideal vs churned (5% intermittent)"
    );
    let mut gate = Table::new(
        vec![
            "workload",
            "churn",
            "rounds",
            "delivered",
            "churn_lost",
            "trace",
        ],
        args.has("csv"),
    );
    for spreader in Spreader::ALL {
        for churned in [false, true] {
            let scenario = {
                let s = Scenario::new(gate_n).protocol(spreader).cycles(20);
                if churned {
                    s.churn(Churn::intermittent(0.05))
                } else {
                    s
                }
            };
            let (a, seq_wall) = timed_run(&scenario, seed ^ 0x6A7E);
            let sharded = scenario.clone().sharded(gate_shards);
            let (b, sh_wall) = timed_run(&sharded, seed ^ 0x6A7E);
            let same = identical(&a, &b);
            all_identical &= same;
            if !churned {
                records.push(record(spreader.name(), gate_n, 0, &a, seq_wall));
                records.push(record(spreader.name(), gate_n, gate_shards, &b, sh_wall));
            }
            gate.row(vec![
                spreader.name().to_string(),
                if churned { "5%" } else { "none" }.to_string(),
                a.rounds.to_string(),
                a.stats.delivered.to_string(),
                a.stats.churn_lost.to_string(),
                if same { "identical" } else { "DIVERGED" }.to_string(),
            ]);
        }
    }
    gate.print();

    println!(
        "# determinism: {}",
        if all_identical {
            "every sharded run reproduced its sequential trace bit-for-bit"
        } else {
            "FAILURE: executor traces diverged"
        }
    );

    // ---- n-scaling series: the millions-of-nodes tier.
    let mut scaling_records: Vec<ScalingRecord> = Vec::new();
    if args.has("n-series") {
        let series_n = args.get_usize_list("series-n", &[100_000, 1_000_000]);
        let series_shards = args.get_usize_list("series-shards", &[1, 2, 8]);
        println!();
        println!(
            "# n-scaling series — {} via streaming finalize + arena node state",
            Spreader::Dating.name()
        );
        let mut st = Table::new(
            vec![
                "n", "shards", "rounds", "wall_s", "ns/round", "Mmsg/s", "B/node", "trace",
            ],
            args.has("csv"),
        );
        for &sn in &series_n {
            if let Some(avail) = available_mem_bytes() {
                let est = sn as u64 * EST_BYTES_PER_NODE;
                if est > avail {
                    println!(
                        "# skipping n={sn}: estimated {est} bytes resident, \
                         only {avail} available"
                    );
                    continue;
                }
            }
            let sc = Scenario::new(sn).protocol(Spreader::Dating);
            let (seq, seq_wall) = timed_run(&sc, seed);
            let mut point_rows =
                vec![(0usize, seq_wall, scaling_point(sn, 0, &seq, seq_wall), true)];
            for &k in &series_shards {
                let sharded = sc.clone().sharded(k);
                let (sh, wall) = timed_run(&sharded, seed);
                let same = seq.digests == sh.digests && identical(&seq, &sh);
                all_identical &= same;
                point_rows.push((k, wall, scaling_point(sn, k, &sh, wall), same));
            }
            for (k, wall, rec, same) in point_rows {
                st.row(vec![
                    sn.to_string(),
                    k.to_string(),
                    rec.rounds.to_string(),
                    format!("{wall:.3}"),
                    format!("{:.0}", rec.ns_per_round()),
                    format!("{:.2}", rec.msgs_per_sec() / 1e6),
                    format!("{:.1}", rec.bytes_per_node()),
                    if k == 0 {
                        "reference".to_string()
                    } else if same {
                        "identical".to_string()
                    } else {
                        "DIVERGED".to_string()
                    },
                ]);
                scaling_records.push(rec);
            }
        }
        st.print();

        let floor = args.get_f64("series-floor", 0.0);
        if floor > 0.0 {
            let slowest = scaling_records
                .iter()
                .min_by(|a, b| a.msgs_per_sec().total_cmp(&b.msgs_per_sec()));
            match slowest {
                None => println!("# series floor: no scaling points ran (all skipped)"),
                Some(rec) => {
                    println!(
                        "# series floor: slowest point n={} shards={} at {:.2} Mmsg/s \
                         (floor {:.2} Mmsg/s)",
                        rec.n,
                        rec.shards,
                        rec.msgs_per_sec() / 1e6,
                        floor / 1e6
                    );
                    assert!(
                        rec.msgs_per_sec() >= floor,
                        "n-scaling throughput regression: n={} shards={} ran at {:.0} msgs/s, \
                         below --series-floor {:.0}",
                        rec.n,
                        rec.shards,
                        rec.msgs_per_sec(),
                        floor
                    );
                }
            }
        }
    }

    // ---- Async determinism gate: the continuous-time executor at
    // several wake-queue lane counts must reproduce one event trace.
    let mut async_records: Vec<AsyncEventsRecord> = Vec::new();
    let run_async = args.get_str("time-model", "") == "continuous";
    if run_async {
        let an = args.get_u64("async-n", 20_000) as usize;
        let lane_counts = [1usize, 2, 8];
        println!();
        println!(
            "# Async determinism gate — event-driven executor (rate 1.0/s), \
             n={an}, lanes {{1, 2, 8}} must be bit-identical"
        );
        let mut at = Table::new(
            vec![
                "workload", "lanes", "events", "sim_s", "wall_s", "ns/event", "Mev/s", "trace",
            ],
            args.has("csv"),
        );
        let cfg = RunConfig::seeded(seed ^ 0xA57C);
        for sp in Spreader::ALL
            .into_iter()
            .filter(|s| s.supports_continuous())
        {
            let mut reference: Option<RunReport<AsyncSpreadSummary>> = None;
            for &lanes in &lane_counts {
                let mut proto = AsyncSpread::new(an, NodeId(0), sp);
                let start = Instant::now();
                let r = EventExecutor::with_lanes(1.0, lanes).run(&mut proto, an, &cfg);
                let wall = start.elapsed().as_secs_f64();
                assert!(r.completed, "{sp} must complete at n={an}");
                let same = match &reference {
                    None => true,
                    Some(first) => {
                        r.rounds == first.rounds
                            && r.digests == first.digests
                            && r.stats == first.stats
                            && r.output == first.output
                            && r.time == first.time
                    }
                };
                all_identical &= same;
                let rec = AsyncEventsRecord {
                    workload: sp.name().to_string(),
                    n: an,
                    lanes,
                    events: r.rounds,
                    wall_s: wall,
                };
                at.row(vec![
                    sp.name().to_string(),
                    lanes.to_string(),
                    r.rounds.to_string(),
                    format!("{:.2}", r.time.sim_seconds().unwrap_or(0.0)),
                    format!("{wall:.3}"),
                    format!("{:.0}", rec.ns_per_event()),
                    format!("{:.2}", rec.events_per_sec() / 1e6),
                    if lanes == 1 {
                        "reference".to_string()
                    } else if same {
                        "identical".to_string()
                    } else {
                        "DIVERGED".to_string()
                    },
                ]);
                async_records.push(rec);
                if reference.is_none() {
                    reference = Some(r);
                }
            }
        }
        at.print();
        println!(
            "# async determinism: {}",
            if all_identical {
                "every lane count reproduced the single-lane event trace bit-for-bit"
            } else {
                "FAILURE: event traces diverged across lane counts"
            }
        );
    }

    if !bench_out.is_empty() {
        let path = std::path::Path::new(&bench_out);
        // Preserve the sweep_throughput series exp_sweep owns; rewrite
        // only the records this binary produced. The scaling and
        // async_events series are replaced only when their sections
        // actually ran.
        let (_, sweeps, old_scaling, old_async) = load_bench_json(path);
        let scaling_out = if args.has("n-series") {
            &scaling_records
        } else {
            &old_scaling
        };
        let async_out = if run_async {
            &async_records
        } else {
            &old_async
        };
        write_bench_json(path, cores, seed, &records, &sweeps, scaling_out, async_out)
            .unwrap_or_else(|e| panic!("cannot write {bench_out}: {e}"));
        println!(
            "# wrote {} benchmark records, {} scaling points and {} async points to {bench_out}",
            records.len(),
            scaling_out.len(),
            async_out.len()
        );
    }
    assert!(all_identical, "sharded executor diverged from sequential");
}
