//! §5 storage experiment: replication via dating-service block exchange.
//!
//! Nodes offer free slots and request remote placement for their blocks;
//! each date stores one block. We sweep the replication factor, then
//! crash 10% of the nodes and measure re-replication.
//!
//! Usage: `exp_storage [--quick|--full] [--n N] [--seed S]`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rendez_bench::{table, CliArgs, Table};
use rendez_core::UniformSelector;
use rendez_sim::run_trials;
use rendez_stats::RunningStats;
use rendez_storage::{crash_and_recover, run_exchange, StorageSystem};

fn main() {
    let args = CliArgs::parse();
    let seed = args.get_u64("seed", 0x5706);
    let threads = args.get_u64("threads", 0) as usize;
    let n = args.get_u64("n", 100) as usize;
    let blocks = 3u32;
    let net_bw = 4u32;
    let trials = args.scaled_trials(200, 10) as usize;

    println!(
        "# §5 storage — replication exchange then 10% crash recovery (n={n}, {trials} trials)"
    );
    let mut t = Table::new(
        vec![
            "replication",
            "build_rounds",
            "imbalance",
            "wasted_dates",
            "recovery_rounds",
            "replicas_lost",
        ],
        args.has("csv"),
    );

    for replication in [2u32, 3, 4] {
        let capacity = blocks * replication + 2; // modest supply slack
        let results = run_trials(trials, seed ^ replication as u64, threads, |tr| {
            let mut rng = SmallRng::seed_from_u64(tr.seed);
            let sel = UniformSelector::new(n);
            let mut sys = StorageSystem::uniform(n, capacity, blocks, replication);
            let build = run_exchange(&mut sys, &sel, net_bw, &mut rng, 100_000);
            assert!(build.completed, "build did not converge");
            let rec = crash_and_recover(&mut sys, &sel, n / 10, net_bw, &mut rng, 100_000);
            assert!(rec.restored, "recovery did not converge");
            (
                build.rounds as f64,
                build.load_imbalance,
                build.wasted_dates as f64,
                rec.recovery_rounds as f64,
                rec.replicas_lost as f64,
            )
        });
        let col = |f: fn(&(f64, f64, f64, f64, f64)) -> f64| {
            RunningStats::from_iter(results.iter().map(f)).summary()
        };
        let build = col(|r| r.0);
        let imb = col(|r| r.1);
        let waste = col(|r| r.2);
        let rec = col(|r| r.3);
        let lost = col(|r| r.4);
        t.row(vec![
            replication.to_string(),
            table::pm(build.mean, build.std_dev, 1),
            format!("{:.3}", imb.mean),
            format!("{:.0}", waste.mean),
            table::pm(rec.mean, rec.std_dev, 1),
            format!("{:.0}", lost.mean),
        ]);
    }
    t.print();
    println!("# expected: build_rounds grows mildly with replication; recovery ≪ build");
}
