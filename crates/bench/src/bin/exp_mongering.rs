//! §5 mongering experiment: coded vs uncoded multi-block broadcast.
//!
//! The message is split into k blocks and pushed through dating-service
//! dates. Uncoded forwarding suffers the coupon-collector tail; RLNC over
//! GF(256) removes it ("randomized network coding techniques have proven
//! their efficiency" — the \[DMC06\] claim).
//!
//! Usage: `exp_mongering [--quick|--full] [--n N] [--seed S]`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rendez_bench::{table, CliArgs, Table};
use rendez_coding::{run_mongering, MongeringConfig, TransferMode};
use rendez_core::{Platform, UniformSelector};
use rendez_sim::{run_trials, NodeId};
use rendez_stats::RunningStats;

fn main() {
    let args = CliArgs::parse();
    let seed = args.get_u64("seed", 0xC0DE);
    let threads = args.get_u64("threads", 0) as usize;
    let n = args.get_u64("n", 200) as usize;
    let trials = args.scaled_trials(200, 10) as usize;

    println!("# §5 mongering — k-block broadcast, coded vs uncoded (n={n}, {trials} trials)");
    let mut t = Table::new(
        vec![
            "k",
            "uncoded_rounds",
            "coded_rounds",
            "uncoded_eff",
            "coded_eff",
            "coded_speedup",
        ],
        args.has("csv"),
    );

    let platform = Platform::unit(n);
    let selector = UniformSelector::new(n);
    for k in [4usize, 16, 64] {
        let run_mode = |mode: TransferMode, salt: u64| {
            let results = run_trials(trials, seed ^ salt ^ k as u64, threads, |tr| {
                let mut rng = SmallRng::seed_from_u64(tr.seed);
                let r = run_mongering(
                    &platform,
                    &selector,
                    NodeId(0),
                    mode,
                    MongeringConfig {
                        k,
                        block_len: 16,
                        max_rounds: 100_000,
                    },
                    &mut rng,
                );
                assert!(r.completed && r.decoded_ok);
                (r.rounds as f64, r.efficiency())
            });
            let rounds = RunningStats::from_iter(results.iter().map(|&(r, _)| r)).summary();
            let eff = RunningStats::from_iter(results.iter().map(|&(_, e)| e)).summary();
            (rounds, eff)
        };
        let (ur, ue) = run_mode(TransferMode::Uncoded, 0xA);
        let (cr, ce) = run_mode(TransferMode::Coded, 0xB);
        t.row(vec![
            k.to_string(),
            table::pm(ur.mean, ur.std_dev, 1),
            table::pm(cr.mean, cr.std_dev, 1),
            format!("{:.3}", ue.mean),
            format!("{:.3}", ce.mean),
            format!("{:.2}x", ur.mean / cr.mean),
        ]);
    }
    t.print();
    println!("# expected: coded_rounds < uncoded_rounds, gap growing with k");
}
