//! Lemma 1 / §2-remark experiment: `E[X]/m` vs the analytic predictions.
//!
//! Checks three claims: the measured ratio matches the Poisson prediction
//! (`≈ 0.476` at `m = n` uniform — the paper's text quotes a cruder 0.44
//! estimate but measures >0.47); it always clears the universal `0.064·m`
//! bucket bound; and it *increases with `m/n`* (§2: "the ratio `E[X]/m`
//! is an increasing function of m/n").
//!
//! Usage: `exp_lemma1_expectation [--quick|--full] [--n N] [--seed S]`

use rendez_bench::{table, CliArgs, Table};
use rendez_core::{analysis, CountWorkspace, DatingService, Platform, UniformSelector};
use rendez_sim::run_trials;
use rendez_stats::RunningStats;

fn main() {
    let args = CliArgs::parse();
    let seed = args.get_u64("seed", 0x11);
    let threads = args.get_u64("threads", 0) as usize;
    let n = args.get_u64("n", 1000) as usize;
    let rounds = args.scaled_trials(10_000, 200);

    println!("# Lemma 1 — expected dates vs m/n (n={n}, {rounds} rounds per point)");
    println!(
        "# universal bucket bound: {:.4}·m (paper rounds to {:.3})",
        analysis::bucket_lower_bound(),
        analysis::BETA_PROVEN
    );
    let mut t = Table::new(
        vec![
            "m/n",
            "measured",
            "poisson_pred",
            "exact_binomial",
            "above_0.064",
        ],
        args.has("csv"),
    );

    let mut prev = 0.0;
    for mult in [1u32, 2, 4, 8, 16] {
        let platform = Platform::homogeneous(n, mult);
        let selector = UniformSelector::new(n);
        let m = platform.m();
        let fracs = run_trials(rounds as usize, seed ^ mult as u64, threads, |tr| {
            let svc = DatingService::new(&platform, &selector);
            let mut ws = CountWorkspace::new(n);
            let mut rng = rand::rngs::SmallRng::seed_from_u64(tr.seed);
            use rand::SeedableRng as _;
            svc.count_dates(&mut ws, &mut rng) as f64 / m as f64
        });
        let s = RunningStats::from_iter(fracs).summary();
        let pred = analysis::expected_dates_uniform(n, m, m) / m as f64;
        let exact = analysis::expected_min_binomial(m, m, 1.0 / n as f64) * n as f64 / m as f64;
        assert!(
            s.mean > prev,
            "E[X]/m must increase with m/n: {} after {prev}",
            s.mean
        );
        prev = s.mean;
        t.row(vec![
            mult.to_string(),
            table::pm(s.mean, s.std_dev, 4),
            format!("{pred:.4}"),
            format!("{exact:.4}"),
            (s.mean > analysis::BETA_PROVEN).to_string(),
        ]);
    }
    t.print();
    println!("# all rows must show measured ≈ poisson_pred and above_0.064 = true");
}
