//! §2 conjecture experiment: uniform is the worst-case distribution.
//!
//! "We conjecture that the uniform distribution is in fact the worst case
//! for this ratio. That is, if some nodes have higher probability of being
//! chosen, they attract more requests and arrange more dates. Our
//! experiments in Section 4 confirm this." Here we sweep Zipf exponents,
//! hotspot boosts and random DHT rings, printing the measured ratio and
//! the Poisson prediction; every skewed row must beat the uniform row.
//!
//! Usage: `exp_conjecture_skew [--quick|--full] [--n N] [--seed S]`

use rendez_bench::{table, CliArgs, Table};
use rendez_core::{
    analysis, AliasSelector, CountWorkspace, DatingService, NodeSelector, Platform, UniformSelector,
};
use rendez_dht::DhtSelector;
use rendez_sim::run_trials;
use rendez_stats::RunningStats;

fn measure(
    platform: &Platform,
    selector: &dyn NodeSelector,
    rounds: usize,
    seed: u64,
    threads: usize,
) -> (f64, f64) {
    let n = platform.n();
    let m = platform.m();
    let fracs = run_trials(rounds, seed, threads, |tr| {
        let svc = DatingService::new(platform, selector);
        let mut ws = CountWorkspace::new(n);
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(tr.seed);
        svc.count_dates(&mut ws, &mut rng) as f64 / m as f64
    });
    let s = RunningStats::from_iter(fracs).summary();
    (s.mean, s.std_dev)
}

fn main() {
    let args = CliArgs::parse();
    let seed = args.get_u64("seed", 0x5E);
    let threads = args.get_u64("threads", 0) as usize;
    let n = args.get_u64("n", 1000) as usize;
    let rounds = args.scaled_trials(5_000, 200) as usize;
    let platform = Platform::unit(n);

    println!("# §2 conjecture — skewed selectors arrange MORE dates (n=m={n}, {rounds} rounds)");
    let mut t = Table::new(
        vec!["selector", "measured", "predicted", "beats_uniform"],
        args.has("csv"),
    );

    let selectors: Vec<Box<dyn NodeSelector>> = vec![
        Box::new(UniformSelector::new(n)),
        Box::new(AliasSelector::zipf(n, 0.25)),
        Box::new(AliasSelector::zipf(n, 0.5)),
        Box::new(AliasSelector::zipf(n, 1.0)),
        Box::new(AliasSelector::zipf(n, 1.5)),
        Box::new(AliasSelector::zipf(n, 2.0)),
        Box::new(AliasSelector::hotspot(n, n / 20, 10.0)),
        Box::new(AliasSelector::hotspot(n, 1, (n as f64) / 2.0)),
        Box::new(DhtSelector::random(n, seed ^ 0xD)),
    ];

    let mut uniform_mean = 0.0;
    for (i, sel) in selectors.iter().enumerate() {
        let (mean, sd) = measure(&platform, sel.as_ref(), rounds, seed ^ i as u64, threads);
        let predicted =
            analysis::expected_dates_weighted(&sel.weights(), n as u64, n as u64) / n as f64;
        if i == 0 {
            uniform_mean = mean;
        }
        let beats = mean >= uniform_mean - 1e-9;
        assert!(
            beats,
            "{} ratio {mean} fell below uniform {uniform_mean} — conjecture violated",
            sel.name()
        );
        t.row(vec![
            sel.name().to_string(),
            table::pm(mean, sd, 4),
            format!("{predicted:.4}"),
            beats.to_string(),
        ]);
    }
    t.print();
    println!("# conjecture confirmed iff every skewed selector beats the uniform row");
}
