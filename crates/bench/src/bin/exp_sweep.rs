//! Monte-Carlo sweep driver: one `SweepSpec` from CLI flags, scheduled
//! onto the persistent-pool fleet engine, streamed into one
//! machine-readable `SweepReport` JSON.
//!
//! The grid is the cartesian product of four axes (× trials per cell):
//!
//! ```text
//! exp_sweep --n 1000,10000 --protocols push,push-pull,fair-pull,dating \
//!           --churn 0.0,0.1 --loss 0.0,0.05 --trials 64 \
//!           --pool 0 --out sweep.json
//! ```
//!
//! `--serial` runs the same sweep inline on the calling thread instead —
//! the honest baseline for speedup claims, byte-identical output by the
//! fleet's determinism contract (run both and `diff` the files). With
//! `--bench-out PATH` the harness times **both** engines, verifies that
//! byte-identity, and appends `{engine, pool, scenarios/sec}` records to
//! the `sweep_throughput` series of `BENCH_runtime.json`, preserving the
//! `records` series that `exp_runtime_scaling` owns.
//!
//! Before writing anything the harness re-parses its own JSON and checks
//! every cell carries 95% CI bounds that bracket the mean — the emitted
//! artifact is self-verified, not just pretty-printed.
//!
//! Usage: `exp_sweep [--n LIST] [--protocols LIST] [--churn LIST]
//!         [--loss LIST] [--trials N] [--cycles N] [--seed S] [--pool P]
//!         [--serial] [--out PATH] [--bench-out PATH] [--quick] [--csv]`

use rendez_bench::{load_bench_json, write_bench_json, CliArgs, SweepThroughputRecord, Table};
use rendez_fleet::{json, run_serial, Fleet, SweepReport, SweepSpec};
use std::time::Instant;

fn spec_from_args(args: &CliArgs) -> SweepSpec {
    let default_ns: &[usize] = if args.has("quick") {
        &[100, 300]
    } else {
        &[1_000, 3_000, 10_000]
    };
    let protocols = args
        .get_str_list(
            "protocols",
            &["push", "push-pull", "fair-pull", "push-fair-pull", "dating"],
        )
        .iter()
        .map(|name| {
            rendez_runtime::Spreader::from_name(name)
                .unwrap_or_else(|| panic!("unknown protocol {name:?}; see Spreader::ALL"))
        })
        .collect();
    SweepSpec::new()
        .ns(args.get_usize_list("n", default_ns))
        .protocols(protocols)
        .churns(args.get_f64_list("churn", &[0.0, 0.1]))
        .losses(args.get_f64_list("loss", &[0.0]))
        .trials(args.get_u64("trials", if args.has("quick") { 8 } else { 64 }))
        .cycles(args.get_u64("cycles", 30))
        .seed(args.get_u64("seed", 0x57EE9))
}

/// Re-parse the rendered report and check every cell carries CI bounds
/// bracketing its mean — proof the artifact is machine-readable, run on
/// every invocation before anything is written.
fn self_check(json_text: &str) -> Result<(), String> {
    let doc = json::parse(json_text)?;
    if doc.get("schema").and_then(|v| v.as_str()) != Some("rendez-fleet/sweep-v1") {
        return Err("missing or wrong schema".to_string());
    }
    let cells = doc
        .get("cells")
        .and_then(|v| v.as_array())
        .ok_or("missing cells array")?;
    for cell in cells {
        let value = cell.get("value").ok_or("cell missing value metric")?;
        let mean = value.get("mean").and_then(|v| v.as_f64());
        let lo = value.get("ci95_lo").and_then(|v| v.as_f64());
        let hi = value.get("ci95_hi").and_then(|v| v.as_f64());
        match (lo, mean, hi) {
            (Some(lo), Some(mean), Some(hi)) if lo <= mean && mean <= hi => {}
            _ => {
                return Err(format!(
                    "cell {:?} lacks CI bounds bracketing the mean",
                    cell.get("index").and_then(|v| v.as_f64())
                ))
            }
        }
    }
    Ok(())
}

fn print_table(report: &SweepReport, csv: bool) {
    let mut t = Table::new(
        vec![
            "n", "protocol", "churn", "loss", "done", "mean", "sd", "ci95",
        ],
        csv,
    );
    for c in &report.cells {
        t.row(vec![
            c.cell.n.to_string(),
            c.cell.protocol.name().to_string(),
            format!("{:.2}", c.cell.churn),
            format!("{:.2}", c.cell.loss),
            format!("{}/{}", c.completed, c.trials),
            format!("{:.2}", c.value.mean),
            format!("{:.2}", c.value.sd),
            format!("[{:.2}, {:.2}]", c.value.ci95_lo, c.value.ci95_hi),
        ]);
    }
    t.print();
}

fn main() {
    let args = CliArgs::parse();
    let spec = spec_from_args(&args);
    let pool = args.get_u64("pool", 0) as usize;
    let out = args.get_str("out", "");
    let bench_out = args.get_str("bench-out", "");
    let serial_only = args.has("serial") && bench_out.is_empty();
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    println!("# Monte-Carlo sweep — fleet engine over a Scenario grid");
    println!(
        "# cells={} trials/cell={} total={} seed={:#x} engine={}",
        spec.cell_count(),
        spec.trials,
        spec.cell_count() as u64 * spec.trials,
        spec.seed,
        if serial_only {
            "serial".to_string()
        } else {
            format!("fleet (pool={pool}, 0=cores; cores={cores})")
        }
    );

    // --bench-out times both engines (the speedup claim needs the
    // serial baseline) and verifies their byte-identity on the way.
    let (report, timings) = if !bench_out.is_empty() {
        let start = Instant::now();
        let serial = run_serial(&spec).unwrap_or_else(|e| panic!("serial sweep failed: {e}"));
        let serial_wall = start.elapsed().as_secs_f64();
        let fleet = Fleet::new(pool);
        let start = Instant::now();
        let fleet_report = fleet
            .run(&spec)
            .unwrap_or_else(|e| panic!("sweep failed: {e}"));
        let fleet_wall = start.elapsed().as_secs_f64();
        assert_eq!(
            serial.to_json(),
            fleet_report.to_json(),
            "fleet output diverged from the serial baseline"
        );
        println!(
            "# engines agree byte-for-byte (serial vs fleet at pool={})",
            fleet.size()
        );
        (
            fleet_report,
            vec![
                ("serial", 0, serial_wall),
                ("fleet", fleet.size(), fleet_wall),
            ],
        )
    } else if serial_only {
        let start = Instant::now();
        let report = run_serial(&spec).unwrap_or_else(|e| panic!("serial sweep failed: {e}"));
        (report, vec![("serial", 0, start.elapsed().as_secs_f64())])
    } else {
        let fleet = Fleet::new(pool);
        let start = Instant::now();
        let report = fleet
            .run(&spec)
            .unwrap_or_else(|e| panic!("sweep failed: {e}"));
        (
            report,
            vec![("fleet", fleet.size(), start.elapsed().as_secs_f64())],
        )
    };

    print_table(&report, args.has("csv"));

    let json_text = report.to_json();
    self_check(&json_text).unwrap_or_else(|e| panic!("emitted report failed self-check: {e}"));
    println!(
        "# self-check: JSON parses, {} cells carry 95% CI bounds",
        report.cells.len()
    );

    let total_trials = report.cells.iter().map(|c| c.trials).sum::<u64>();
    for (engine, pool, wall_s) in &timings {
        let rec = SweepThroughputRecord {
            engine: engine.to_string(),
            pool: *pool,
            cells: report.cells.len(),
            trials_per_cell: spec.trials,
            trials: total_trials,
            wall_s: *wall_s,
        };
        println!(
            "# {engine}: {wall_s:.3}s wall, {:.1} scenarios/sec",
            rec.scenarios_per_sec()
        );
    }

    if !out.is_empty() {
        std::fs::write(&out, &json_text).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        println!("# wrote sweep report to {out}");
    }

    if !bench_out.is_empty() {
        let path = std::path::Path::new(&bench_out);
        // Preserve the `records`, `scaling` and `async_events` series
        // exp_runtime_scaling owns; rewrite only the sweep series.
        let (records, _, scaling, async_events) = load_bench_json(path);
        let sweeps: Vec<SweepThroughputRecord> = timings
            .iter()
            .map(|(engine, pool, wall_s)| SweepThroughputRecord {
                engine: engine.to_string(),
                pool: *pool,
                cells: report.cells.len(),
                trials_per_cell: spec.trials,
                trials: total_trials,
                wall_s: *wall_s,
            })
            .collect();
        write_bench_json(
            path,
            cores,
            spec.seed,
            &records,
            &sweeps,
            &scaling,
            &async_events,
        )
        .unwrap_or_else(|e| panic!("cannot write {bench_out}: {e}"));
        println!(
            "# wrote {} sweep_throughput records to {bench_out} ({} records preserved)",
            sweeps.len(),
            records.len()
        );
    }
}
