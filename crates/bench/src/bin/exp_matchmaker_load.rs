//! §2 load-balancing experiment: who does the matchmaking work?
//!
//! "This randomness is a load-balancing factor; as an extreme case,
//! sending all requests to a single node would result in a centralized
//! scheme." We measure per-node matchmaking load (dates arranged per
//! round) across the selector families — uniform spreads it thin, skew
//! concentrates it, and the single-target extreme is fully centralized
//! (with the highest date count, Lemma 1's other end of the trade-off).
//!
//! Usage: `exp_matchmaker_load [--quick|--full] [--n N] [--seed S]`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rendez_bench::{CliArgs, Table};
use rendez_core::{
    date_loads, AliasSelector, DatingService, NodeSelector, Platform, SingleTargetSelector,
    UniformSelector,
};
use rendez_sim::NodeId;

fn main() {
    let args = CliArgs::parse();
    let seed = args.get_u64("seed", 0x10AD);
    let n = args.get_u64("n", 2_000) as usize;
    let rounds = args.scaled_trials(1_000, 50);

    println!("# §2 load balancing — matchmaking load per selector (n=m={n}, {rounds} rounds)");
    let mut t = Table::new(
        vec![
            "selector",
            "dates/m",
            "busy_frac",
            "max_load",
            "max/mean_load",
        ],
        args.has("csv"),
    );

    let platform = Platform::unit(n);
    let selectors: Vec<Box<dyn NodeSelector>> = vec![
        Box::new(UniformSelector::new(n)),
        Box::new(AliasSelector::zipf(n, 1.0)),
        Box::new(AliasSelector::hotspot(n, n / 100, 50.0)),
        Box::new(SingleTargetSelector::new(n, NodeId(0))),
    ];
    let mut rng = SmallRng::seed_from_u64(seed);
    for sel in &selectors {
        let svc = DatingService::new(&platform, sel.as_ref());
        let (mut dates, mut busy, mut maxload, mut imb) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for _ in 0..rounds {
            let out = svc.run_round(&mut rng);
            let s = date_loads(n, &out.dates).matchmaker_summary();
            dates += out.date_count() as f64 / platform.m() as f64;
            busy += s.busy_nodes as f64 / n as f64;
            maxload += s.max as f64;
            imb += s.imbalance();
        }
        let r = rounds as f64;
        t.row(vec![
            sel.name().to_string(),
            format!("{:.4}", dates / r),
            format!("{:.4}", busy / r),
            format!("{:.1}", maxload / r),
            format!("{:.1}", imb / r),
        ]);
    }
    t.print();
    println!("# trade-off: skew raises dates/m (Lemma 1 conjecture) but concentrates load");
}
