//! Dependency-free command-line flags for the experiment harnesses.
//!
//! Syntax: `--name value` pairs and boolean `--flag`s. Values never start
//! with `--`. Unknown flags are tolerated (harnesses share a vocabulary).

use std::collections::HashMap;

/// Parsed flags.
#[derive(Debug, Clone, Default)]
pub struct CliArgs {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl CliArgs {
    /// Parse the process arguments.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parse from an explicit token list (for tests).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let tokens: Vec<String> = args.into_iter().collect();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            if let Some(name) = t.strip_prefix("--") {
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    values.insert(name.to_string(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    flags.push(name.to_string());
                    i += 1;
                }
            } else {
                i += 1; // stray positional: ignored
            }
        }
        Self { values, flags }
    }

    /// Boolean flag presence (`--quick`, `--csv`, …).
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// `--name N` as u64.
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.values
            .get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{name} wants an integer, got {v}"))
            })
            .unwrap_or(default)
    }

    /// `--name value` as a string (e.g. an output path).
    pub fn get_str(&self, name: &str, default: &str) -> String {
        self.values
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// `--name X` as f64.
    pub fn get_f64(&self, name: &str, default: f64) -> f64 {
        self.values
            .get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{name} wants a number, got {v}"))
            })
            .unwrap_or(default)
    }

    /// `--name a,b,c` as a usize list.
    pub fn get_usize_list(&self, name: &str, default: &[usize]) -> Vec<usize> {
        match self.values.get(name) {
            None => default.to_vec(),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("--{name} wants integers, got {s}"))
                })
                .collect(),
        }
    }

    /// `--name 0.0,0.1,0.25` as an f64 list.
    pub fn get_f64_list(&self, name: &str, default: &[f64]) -> Vec<f64> {
        match self.values.get(name) {
            None => default.to_vec(),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("--{name} wants numbers, got {s}"))
                })
                .collect(),
        }
    }

    /// `--name a,b,c` as a string list.
    pub fn get_str_list(&self, name: &str, default: &[&str]) -> Vec<String> {
        match self.values.get(name) {
            None => default.iter().map(|s| s.to_string()).collect(),
            Some(v) => v.split(',').map(|s| s.trim().to_string()).collect(),
        }
    }

    /// Shared scale convention: multiply paper-scale trial counts by this.
    /// `--quick` → 1/50 scale (CI), `--full` → 1, default → 1/10.
    pub fn scale(&self) -> f64 {
        if self.has("quick") {
            0.02
        } else if self.has("full") {
            1.0
        } else {
            0.1
        }
    }

    /// Scale a paper trial count, with a floor.
    pub fn scaled_trials(&self, paper: u64, floor: u64) -> u64 {
        ((paper as f64 * self.scale()) as u64).max(floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> CliArgs {
        CliArgs::from_iter(s.iter().map(|x| x.to_string()))
    }

    #[test]
    fn values_and_flags() {
        let a = args(&["--seed", "42", "--quick", "--n", "10,20"]);
        assert_eq!(a.get_u64("seed", 0), 42);
        assert!(a.has("quick"));
        assert!(!a.has("csv"));
        assert_eq!(a.get_usize_list("n", &[1]), vec![10, 20]);
    }

    #[test]
    fn defaults_apply() {
        let a = args(&[]);
        assert_eq!(a.get_u64("seed", 7), 7);
        assert_eq!(a.get_f64("alpha", 0.5), 0.5);
        assert_eq!(a.get_usize_list("n", &[3, 4]), vec![3, 4]);
        assert_eq!(a.get_str("bench-out", "BENCH.json"), "BENCH.json");
    }

    #[test]
    fn lists_parse() {
        let a = args(&["--churn", "0.0, 0.1,0.25", "--protocols", "push, dating"]);
        assert_eq!(a.get_f64_list("churn", &[0.5]), vec![0.0, 0.1, 0.25]);
        assert_eq!(a.get_f64_list("loss", &[0.5]), vec![0.5]);
        assert_eq!(a.get_str_list("protocols", &["x"]), vec!["push", "dating"]);
        assert_eq!(a.get_str_list("other", &["x", "y"]), vec!["x", "y"]);
    }

    #[test]
    fn string_values_pass_through() {
        let a = args(&["--bench-out", "out/BENCH_runtime.json"]);
        assert_eq!(a.get_str("bench-out", "x"), "out/BENCH_runtime.json");
    }

    #[test]
    fn scale_modes() {
        assert_eq!(args(&["--quick"]).scale(), 0.02);
        assert_eq!(args(&["--full"]).scale(), 1.0);
        assert_eq!(args(&[]).scale(), 0.1);
        assert_eq!(args(&["--quick"]).scaled_trials(10_000, 50), 200);
        assert_eq!(args(&["--quick"]).scaled_trials(100, 50), 50);
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = args(&["--csv", "--seed", "1"]);
        assert!(a.has("csv"));
        assert_eq!(a.get_u64("seed", 0), 1);
    }

    #[test]
    #[should_panic(expected = "wants an integer")]
    fn bad_integer_panics() {
        let a = args(&["--seed", "xyz"]);
        let _ = a.get_u64("seed", 0);
    }
}
