#![forbid(unsafe_code)]
//! # rendez-bench — experiment harnesses and benchmarks
//!
//! One binary per paper artifact (see `src/bin/exp_*.rs`) plus Criterion
//! micro-benchmarks (see `benches/`). This library holds the shared
//! machinery: a dependency-free flag parser ([`cli`]), aligned/CSV table
//! printing ([`table`]) and the reusable experiment kernels
//! ([`experiments`]) that both the binaries and the integration tests
//! call.
//!
//! Every harness accepts:
//!
//! * `--quick` — CI-scale parameters (seconds, not minutes);
//! * `--full`  — the paper's full trial counts;
//! * `--seed N`, `--threads N`, `--csv` — reproducibility and output.

pub mod benchjson;
pub mod cli;
pub mod experiments;
pub mod table;

pub use benchjson::{
    load_bench_json, write_bench_json, AsyncEventsRecord, BenchRecord, ScalingRecord,
    SweepThroughputRecord,
};
pub use cli::CliArgs;
pub use table::Table;
