//! Figure 1 kernels: fraction of dates arranged per round.
//!
//! Paper workload: `n` nodes, `bin = bout = 1` (so `m = n` and `n`
//! requests of each type per round); the metric is `#dates / n` averaged
//! over many rounds. Two selector families: uniform, and 200 random DHTs
//! of which the paper reports the worst and best.

use rand::SeedableRng;
use rendez_core::{CountWorkspace, DatingService, NodeSelector, Platform, UniformSelector};
use rendez_dht::DhtSelector;
use rendez_sim::{derive_seed, run_trials, NodeId};
use rendez_stats::{RunningStats, Summary};

/// Mean date fraction over `rounds` independent rounds with the uniform
/// selector (parallel across rounds — they are i.i.d.).
pub fn uniform_point(n: usize, rounds: u64, seed: u64, threads: usize) -> Summary {
    let platform = Platform::unit(n);
    let selector = UniformSelector::new(n);
    let fracs = run_trials(rounds as usize, seed, threads, |t| {
        let svc = DatingService::new(&platform, &selector);
        let mut ws = CountWorkspace::new(n);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(t.seed);
        svc.count_dates(&mut ws, &mut rng) as f64 / n as f64
    });
    RunningStats::from_iter(fracs).summary()
}

/// One DHT's mean date fraction over `rounds` rounds (sequential; the
/// sweep parallelizes across DHTs).
pub fn dht_point(n: usize, ring_seed: u64, rounds: u64, round_seed: u64) -> Summary {
    let platform = Platform::unit(n);
    let selector = DhtSelector::random(n, ring_seed);
    let svc = DatingService::new(&platform, &selector);
    let mut ws = CountWorkspace::new(n);
    let mut stats = RunningStats::new();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(round_seed);
    for _ in 0..rounds {
        stats.push(svc.count_dates(&mut ws, &mut rng) as f64 / n as f64);
    }
    stats.summary()
}

/// The paper's DHT experiment: generate `n_dhts` random rings, measure
/// each over `rounds` rounds, report the worst and best by mean fraction,
/// together with the Poisson-approximation predictions for those rings.
#[derive(Debug, Clone)]
pub struct DhtSweep {
    /// Summary of the worst (lowest-mean) DHT.
    pub worst: Summary,
    /// Summary of the best DHT.
    pub best: Summary,
    /// Analytic prediction (`Σ E[min(Po, Po)] / m`) for the worst ring.
    pub worst_predicted: f64,
    /// Analytic prediction for the best ring.
    pub best_predicted: f64,
}

/// Run the DHT sweep (parallel across DHTs).
pub fn dht_sweep(n: usize, n_dhts: usize, rounds: u64, seed: u64, threads: usize) -> DhtSweep {
    assert!(n_dhts >= 1, "need at least one DHT");
    let results = run_trials(n_dhts, seed, threads, |t| {
        let ring_seed = derive_seed(t.seed, 0xD47);
        let s = dht_point(n, ring_seed, rounds, derive_seed(t.seed, 0x70F));
        (ring_seed, s)
    });
    let cmp = |a: &&(u64, Summary), b: &&(u64, Summary)| {
        a.1.mean
            .partial_cmp(&b.1.mean)
            .expect("fractions are finite")
    };
    let worst = *results.iter().min_by(cmp).expect("non-empty");
    let best = *results.iter().max_by(cmp).expect("non-empty");
    let predict = |ring_seed: u64| {
        let sel = DhtSelector::random(n, ring_seed);
        rendez_core::analysis::expected_dates_weighted(&sel.weights(), n as u64, n as u64)
            / n as f64
    };
    DhtSweep {
        worst: worst.1,
        best: best.1,
        worst_predicted: predict(worst.0),
        best_predicted: predict(best.0),
    }
}

/// The source node used by spreading experiments (symmetric platforms).
pub fn default_source() -> NodeId {
    NodeId(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendez_core::analysis;

    #[test]
    fn uniform_point_tracks_prediction() {
        let s = uniform_point(1000, 300, 1, 0);
        let predicted = analysis::expected_dates_uniform(1000, 1000, 1000) / 1000.0;
        assert!(
            (s.mean - predicted).abs() < 0.01,
            "measured {} vs predicted {predicted}",
            s.mean
        );
        assert!(s.std_dev < 0.05);
    }

    #[test]
    fn dht_sweep_orders_and_beats_uniform() {
        let sweep = dht_sweep(200, 12, 150, 2, 0);
        assert!(sweep.worst.mean <= sweep.best.mean);
        // §4: even the worst DHT beats the uniform limit.
        assert!(
            sweep.worst.mean > analysis::uniform_ratio_limit(),
            "worst DHT {} should beat uniform {}",
            sweep.worst.mean,
            analysis::uniform_ratio_limit()
        );
        // Predictions should be close to measurements.
        assert!((sweep.worst.mean - sweep.worst_predicted).abs() < 0.03);
        assert!((sweep.best.mean - sweep.best_predicted).abs() < 0.03);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = uniform_point(100, 50, 9, 2);
        let b = uniform_point(100, 50, 9, 4);
        assert_eq!(a.mean, b.mean, "thread count must not matter");
    }
}
