//! Figure 2 kernel: rounds to spread a single rumor, per algorithm.
//!
//! Two engines produce the same figure: the legacy centralized samplers
//! in `rendez_gossip` ([`rumor_point`]) and the message-passing runtime
//! behind the [`Scenario`] builder ([`rumor_point_runtime`]), which also
//! supports churned variants. Both report legacy-equivalent rounds, so
//! their columns are directly comparable.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rendez_core::{Platform, UniformSelector};
use rendez_fleet::{Fleet, SweepSpec};
use rendez_gossip::{run_spread, DatingSpread, FairPull, FairPushPull, Pull, Push, PushPull};
use rendez_runtime::{Churn, Scenario, Spreader};
use rendez_sim::{run_trials, NodeId};
use rendez_stats::{RunningStats, Summary};

/// The six Figure 2 algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Simple PUSH.
    Push,
    /// Simple (unfair) PULL.
    Pull,
    /// Simple PUSH&PULL.
    PushPull,
    /// Fair PULL (one answer per informed node per round).
    FairPull,
    /// PUSH + fair PULL — the paper's fair yardstick.
    FairPushPull,
    /// The dating service with the uniform selector.
    Dating,
}

impl Algo {
    /// All algorithms, in the paper's legend order.
    pub const ALL: [Algo; 6] = [
        Algo::Push,
        Algo::Pull,
        Algo::PushPull,
        Algo::FairPull,
        Algo::FairPushPull,
        Algo::Dating,
    ];

    /// Table column label.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Push => "push",
            Algo::Pull => "pull",
            Algo::PushPull => "push-pull",
            Algo::FairPull => "fair-pull",
            Algo::FairPushPull => "push-fair-pull",
            Algo::Dating => "dating",
        }
    }

    /// The runtime registry workload that reproduces this algorithm.
    pub fn spreader(&self) -> Spreader {
        match self {
            Algo::Push => Spreader::Push,
            Algo::Pull => Spreader::Pull,
            Algo::PushPull => Spreader::PushPull,
            Algo::FairPull => Spreader::FairPull,
            Algo::FairPushPull => Spreader::FairPushPull,
            Algo::Dating => Spreader::Dating,
        }
    }
}

/// Rounds until all `n` nodes are informed: mean ± sd over `trials`
/// independent runs (parallelized).
pub fn rumor_point(algo: Algo, n: usize, trials: u64, seed: u64, threads: usize) -> Summary {
    let platform = Platform::unit(n);
    let selector = UniformSelector::new(n);
    let max_rounds = 200 + 80 * (n as f64).log2().ceil() as u64;
    let rounds = run_trials(trials as usize, seed, threads, |t| {
        let mut rng = SmallRng::seed_from_u64(t.seed);
        let source = NodeId(0);
        let r = match algo {
            Algo::Push => run_spread(&mut Push::new(), &platform, source, &mut rng, max_rounds),
            Algo::Pull => run_spread(&mut Pull::new(), &platform, source, &mut rng, max_rounds),
            Algo::PushPull => run_spread(
                &mut PushPull::new(),
                &platform,
                source,
                &mut rng,
                max_rounds,
            ),
            Algo::FairPull => run_spread(
                &mut FairPull::new(n),
                &platform,
                source,
                &mut rng,
                max_rounds,
            ),
            Algo::FairPushPull => run_spread(
                &mut FairPushPull::new(n),
                &platform,
                source,
                &mut rng,
                max_rounds,
            ),
            Algo::Dating => {
                let mut p = DatingSpread::new(&selector);
                run_spread(&mut p, &platform, source, &mut rng, max_rounds)
            }
        };
        assert!(r.completed, "{} did not complete at n={n}", algo.name());
        r.rounds as f64
    });
    RunningStats::from_iter(rounds).summary()
}

/// Same figure, produced by the message-passing runtime through the
/// [`Scenario`] builder: mean ± sd of legacy-equivalent rounds
/// ([`SpreadRunSummary::cycles`](rendez_runtime::SpreadRunSummary::cycles))
/// over `trials` runs. `churn_down` > 0 runs the churned variant (each
/// node down that fraction of rounds; the source is protected).
pub fn rumor_point_runtime(
    algo: Algo,
    n: usize,
    trials: u64,
    seed: u64,
    threads: usize,
    churn_down: f64,
) -> Summary {
    let scenario = {
        let s = Scenario::new(n).protocol(algo.spreader());
        if churn_down > 0.0 {
            s.churn(Churn::intermittent(churn_down))
        } else {
            s
        }
    };
    let rounds = run_trials(trials as usize, seed, threads, |t| {
        let r = scenario.run(t.seed).expect("fig2 scenario must validate");
        assert!(
            r.completed,
            "{} (runtime) did not complete at n={n}",
            algo.name()
        );
        r.expect_output()
            .spread()
            .expect("spreading workload")
            .cycles as f64
    });
    RunningStats::from_iter(rounds).summary()
}

/// One Figure-2 table row produced by the Monte-Carlo fleet: all six
/// algorithms at one `n`, as a single-`n` [`SweepSpec`] scheduled onto
/// `fleet`'s persistent pool. Returns `(algo, summary)` in
/// [`Algo::ALL`] order, where the summary is over legacy-equivalent
/// rounds — the same figure [`rumor_point_runtime`] computes, but with
/// trials streamed through Welford accumulators instead of
/// materialized, and with thread spawn cost paid once per table
/// instead of once per cell.
pub fn rumor_row_fleet(
    fleet: &Fleet,
    n: usize,
    trials: u64,
    seed: u64,
    churn_down: f64,
) -> Vec<(Algo, Summary)> {
    let spec = SweepSpec::new()
        .ns(vec![n])
        .protocols(Algo::ALL.iter().map(|a| a.spreader()).collect())
        .churns(vec![churn_down])
        .trials(trials)
        .seed(seed);
    let report = fleet.run(&spec).expect("fig2 sweep must validate");
    Algo::ALL
        .iter()
        .zip(&report.cells)
        .map(|(&algo, cell)| {
            assert_eq!(cell.cell.protocol, algo.spreader(), "cell order");
            assert_eq!(
                cell.completed,
                trials,
                "{} (fleet) did not complete at n={n}",
                algo.name()
            );
            let m = cell.value;
            (
                algo,
                Summary {
                    n: m.n,
                    mean: m.mean,
                    std_dev: m.sd,
                    sem: m.sem,
                    min: m.min,
                    max: m.max,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ordering_holds_at_n_1000() {
        // Figure 2's ordering, fastest → slowest:
        // push-pull, push-fair-pull, pull, fair-pull, push, dating.
        let n = 1000;
        let trials = 60;
        let means: Vec<(Algo, f64)> = Algo::ALL
            .iter()
            .map(|&a| (a, rumor_point(a, n, trials, 7, 0).mean))
            .collect();
        let get = |a: Algo| means.iter().find(|&&(x, _)| x == a).expect("present").1;
        assert!(get(Algo::PushPull) < get(Algo::FairPushPull));
        assert!(get(Algo::FairPushPull) < get(Algo::Pull));
        assert!(get(Algo::Pull) < get(Algo::FairPull));
        assert!(get(Algo::FairPull) < get(Algo::Push));
        assert!(get(Algo::Push) < get(Algo::Dating));
        // §4's headline comparison: "we should actually compare the rumor
        // spreading based on the dating service only with the PUSH and
        // fair PULL methods. It is less than 2 times slower than them" —
        // i.e. than the two bandwidth-honest protocols individually (the
        // combined PUSH + fair PULL uses double bandwidth per round).
        assert!(
            get(Algo::Dating) < 2.0 * get(Algo::Push),
            "dating {} vs 2× push {}",
            get(Algo::Dating),
            2.0 * get(Algo::Push)
        );
        assert!(
            get(Algo::Dating) < 2.0 * get(Algo::FairPull),
            "dating {} vs 2× fair-pull {}",
            get(Algo::Dating),
            2.0 * get(Algo::FairPull)
        );
    }

    #[test]
    fn runtime_engine_agrees_with_legacy_means() {
        let n = 500;
        let trials = 40;
        for algo in [Algo::PushPull, Algo::Push, Algo::FairPull] {
            let legacy = rumor_point(algo, n, trials, 3, 0).mean;
            let runtime = rumor_point_runtime(algo, n, trials, 4, 0, 0.0).mean;
            assert!(
                (runtime - legacy).abs() < 0.2 * legacy + 1.5,
                "{}: runtime mean {runtime} vs legacy mean {legacy}",
                algo.name()
            );
        }
    }

    #[test]
    fn fleet_row_agrees_with_per_cell_runtime_means() {
        let n = 300;
        let trials = 40;
        let fleet = Fleet::new(2);
        let row = rumor_row_fleet(&fleet, n, trials, 5, 0.0);
        assert_eq!(row.len(), Algo::ALL.len());
        for (algo, fleet_summary) in row {
            if !matches!(algo, Algo::PushPull | Algo::Push | Algo::FairPull) {
                continue; // spot-check the same trio as the legacy test
            }
            let reference = rumor_point_runtime(algo, n, trials, 6, 0, 0.0).mean;
            assert!(
                (fleet_summary.mean - reference).abs() < 0.2 * reference + 1.5,
                "{}: fleet mean {} vs runtime mean {reference}",
                algo.name(),
                fleet_summary.mean
            );
            assert_eq!(fleet_summary.n, trials);
        }
    }

    #[test]
    fn churn_slows_runtime_spreading() {
        let n = 400;
        let trials = 30;
        let clean = rumor_point_runtime(Algo::PushPull, n, trials, 9, 0, 0.0).mean;
        let churned = rumor_point_runtime(Algo::PushPull, n, trials, 9, 0, 0.25).mean;
        assert!(
            churned > clean,
            "25% downtime must cost rounds: {clean} vs {churned}"
        );
    }

    #[test]
    fn rounds_grow_logarithmically() {
        let small = rumor_point(Algo::Dating, 100, 40, 1, 0);
        let large = rumor_point(Algo::Dating, 10_000, 40, 1, 0);
        // log(10⁴)/log(10²) = 2: rounds should roughly double, not 100×.
        let ratio = large.mean / small.mean;
        assert!(
            (1.2..4.0).contains(&ratio),
            "scaling ratio {ratio} not logarithmic"
        );
    }
}
