//! Reusable experiment kernels shared by the harness binaries and the
//! integration tests.

pub mod fig1;
pub mod fig2;

pub use fig1::{dht_sweep, uniform_point, DhtSweep};
pub use fig2::{rumor_point, Algo};
