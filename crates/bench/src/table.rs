//! Aligned-text / CSV table output for the experiment harnesses.

use std::io::Write;

/// A simple experiment results table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    csv: bool,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>, csv: bool) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            csv,
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string (aligned text or CSV).
    pub fn render(&self) -> String {
        if self.csv {
            let mut out = String::new();
            out.push_str(&self.headers.join(","));
            out.push('\n');
            for r in &self.rows {
                out.push_str(&r.join(","));
                out.push('\n');
            }
            return out;
        }
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r.iter()) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout (locked, buffered).
    pub fn print(&self) {
        let stdout = std::io::stdout();
        let mut lock = stdout.lock();
        let _ = lock.write_all(self.render().as_bytes());
    }
}

/// Format a mean ± sd pair.
pub fn pm(mean: f64, sd: f64, prec: usize) -> String {
    format!("{mean:.prec$}±{sd:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_rendering() {
        let mut t = Table::new(vec!["n", "value"], false);
        t.row(vec!["10", "0.476"]);
        t.row(vec!["100000", "0.477"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n') && lines[0].contains("value"));
        assert!(lines[1].starts_with('-'));
        // Right-aligned numbers line up on the right edge.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new(vec!["a", "b"], true);
        t.row(vec!["1", "2"]);
        assert_eq!(t.render(), "a,b\n1,2\n");
    }

    #[test]
    fn pm_format() {
        assert_eq!(pm(0.4761, 0.0123, 3), "0.476±0.012");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new(vec!["a"], false);
        t.row(vec!["1", "2"]);
    }
}
