//! Runtime executor micro-benchmarks: the same dating workload driven by
//! the sequential and sharded executors, so a regression in either the
//! round core, the shard-local routing or the splice merge shows up as a
//! relative shift.
//!
//! Set `RENDEZ_BENCH_QUICK=1` to restrict to the smallest size with few
//! samples — the CI smoke mode that keeps the harness from bit-rotting
//! without spending CI minutes on statistics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rendez_core::{Platform, UniformSelector};
use rendez_runtime::{Executor, RunConfig, RuntimeDating, SequentialExecutor, ShardedExecutor};

const CYCLES: u64 = 3;

fn run_dating<E: Executor>(exec: &E, n: usize, seed: u64) -> u64 {
    let mut proto = RuntimeDating::new(Platform::unit(n), UniformSelector::new(n), CYCLES);
    let rounds = proto.total_rounds();
    exec.run(&mut proto, n, &RunConfig::seeded(seed).max_rounds(rounds))
        .expect_output()
        .total_dates()
}

fn bench_runtime_round(c: &mut Criterion) {
    let quick = std::env::var("RENDEZ_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let sizes: &[usize] = if quick { &[1_000] } else { &[1_000, 10_000] };
    let mut g = c.benchmark_group("runtime_round");
    g.sample_size(if quick { 3 } else { 10 });
    for &n in sizes {
        // One unit of throughput = one node-cycle of dating work.
        g.throughput(Throughput::Elements(CYCLES * n as u64));
        g.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, &n| {
            b.iter(|| run_dating(&SequentialExecutor, n, 1));
        });
        for shards in [4usize, 8] {
            let exec = ShardedExecutor::new(shards);
            g.bench_with_input(
                BenchmarkId::new(&format!("sharded{shards}"), n),
                &n,
                |b, &n| {
                    b.iter(|| run_dating(&exec, n, 1));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_runtime_round);
criterion_main!(benches);
