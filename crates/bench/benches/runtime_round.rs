//! Runtime executor micro-benchmarks: the same dating workload driven by
//! the sequential and sharded executors, so a regression in either the
//! round core or the shard merge shows up as a relative shift.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rendez_core::{Platform, UniformSelector};
use rendez_runtime::{Executor, RunConfig, RuntimeDating, SequentialExecutor, ShardedExecutor};

const CYCLES: u64 = 3;

fn run_dating<E: Executor>(exec: &E, n: usize, seed: u64) -> u64 {
    let mut proto = RuntimeDating::new(Platform::unit(n), UniformSelector::new(n), CYCLES);
    let rounds = proto.total_rounds();
    exec.run(&mut proto, n, &RunConfig::seeded(seed).max_rounds(rounds))
        .expect_output()
        .total_dates()
}

fn bench_runtime_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_round");
    g.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        // One unit of throughput = one node-cycle of dating work.
        g.throughput(Throughput::Elements(CYCLES * n as u64));
        g.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, &n| {
            b.iter(|| run_dating(&SequentialExecutor, n, 1));
        });
        for shards in [4usize, 8] {
            let exec = ShardedExecutor::new(shards);
            g.bench_with_input(
                BenchmarkId::new(&format!("sharded{shards}"), n),
                &n,
                |b, &n| {
                    b.iter(|| run_dating(&exec, n, 1));
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_runtime_round);
criterion_main!(benches);
