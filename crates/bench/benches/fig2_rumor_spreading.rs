//! Criterion counterpart of Figure 2: one full spreading run per
//! iteration, dating service vs the fair baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rendez_core::{Platform, UniformSelector};
use rendez_gossip::{run_spread, DatingSpread, FairPushPull, Push};
use rendez_sim::NodeId;

fn bench_rumor(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_rumor_spreading");
    g.sample_size(20);
    for &n in &[100usize, 1_000] {
        let platform = Platform::unit(n);
        let selector = UniformSelector::new(n);

        g.bench_with_input(BenchmarkId::new("dating", n), &n, |b, _| {
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| {
                let mut p = DatingSpread::new(&selector);
                run_spread(&mut p, &platform, NodeId(0), &mut rng, 10_000).rounds
            });
        });

        g.bench_with_input(BenchmarkId::new("push", n), &n, |b, _| {
            let mut rng = SmallRng::seed_from_u64(2);
            b.iter(|| run_spread(&mut Push::new(), &platform, NodeId(0), &mut rng, 10_000).rounds);
        });

        g.bench_with_input(BenchmarkId::new("push_fair_pull", n), &n, |b, _| {
            let mut rng = SmallRng::seed_from_u64(3);
            b.iter(|| {
                run_spread(
                    &mut FairPushPull::new(n),
                    &platform,
                    NodeId(0),
                    &mut rng,
                    10_000,
                )
                .rounds
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rumor);
criterion_main!(benches);
