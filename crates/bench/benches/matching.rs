//! Matching primitives: the matchmaker's inner loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rendez_core::matching::{partial_shuffle, random_permutation, uniform_k_matching};

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("matching");
    for &q in &[16usize, 256, 4_096] {
        g.throughput(Throughput::Elements(q as u64));
        g.bench_with_input(BenchmarkId::new("partial_shuffle", q), &q, |b, &q| {
            let mut rng = SmallRng::seed_from_u64(1);
            let mut items: Vec<u32> = (0..(2 * q) as u32).collect();
            b.iter(|| {
                partial_shuffle(&mut items, q, &mut rng);
                items[0]
            });
        });
        g.bench_with_input(BenchmarkId::new("random_permutation", q), &q, |b, &q| {
            let mut rng = SmallRng::seed_from_u64(2);
            b.iter(|| random_permutation(q, &mut rng).len());
        });
        g.bench_with_input(BenchmarkId::new("uniform_k_matching", q), &q, |b, &q| {
            let mut rng = SmallRng::seed_from_u64(3);
            b.iter(|| uniform_k_matching(2 * q, 2 * q, q, &mut rng).len());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
