//! Criterion counterpart of Figure 1: one dating round at each `n`,
//! uniform and DHT selectors, count-only and full-materialization paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rendez_core::{CountWorkspace, DatingService, Platform, RoundWorkspace, UniformSelector};
use rendez_dht::DhtSelector;

fn bench_dating_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_dating_round");
    for &n in &[100usize, 1_000, 10_000] {
        let platform = Platform::unit(n);
        let uniform = UniformSelector::new(n);
        let dht = DhtSelector::random(n, 7);
        g.throughput(Throughput::Elements(n as u64));

        g.bench_with_input(BenchmarkId::new("uniform_count", n), &n, |b, _| {
            let svc = DatingService::new(&platform, &uniform);
            let mut ws = CountWorkspace::new(n);
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| svc.count_dates(&mut ws, &mut rng));
        });

        g.bench_with_input(BenchmarkId::new("uniform_full", n), &n, |b, _| {
            let svc = DatingService::new(&platform, &uniform);
            let mut ws = RoundWorkspace::new(n);
            let mut rng = SmallRng::seed_from_u64(2);
            b.iter(|| svc.run_round_with(&mut ws, &mut rng).date_count());
        });

        g.bench_with_input(BenchmarkId::new("dht_count", n), &n, |b, _| {
            let svc = DatingService::new(&platform, &dht);
            let mut ws = CountWorkspace::new(n);
            let mut rng = SmallRng::seed_from_u64(3);
            b.iter(|| svc.count_dates(&mut ws, &mut rng));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dating_round);
criterion_main!(benches);
