//! DHT lookup cost: the Θ(log n) routing underlying §4's pipelining
//! argument. Chord fingers vs Naor–Wieder distance halving vs direct
//! owner lookup (the oracle the selectors use).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rendez_dht::{ChordNet, NaorWiederNet, Ring};
use rendez_sim::rng::SplitMix64;
use rendez_sim::NodeId;

fn bench_dht(c: &mut Criterion) {
    let mut g = c.benchmark_group("dht_lookup");
    for &n in &[1_000usize, 10_000] {
        let ring = Ring::random(n, 3);
        let chord = ChordNet::build(ring.clone());
        let nw = NaorWiederNet::new(ring.clone(), 3);

        g.bench_with_input(BenchmarkId::new("owner_direct", n), &n, |b, _| {
            let mut h = SplitMix64::new(1);
            b.iter(|| ring.owner(h.next_u64()).0);
        });

        g.bench_with_input(BenchmarkId::new("chord_route", n), &n, |b, &n| {
            let mut h = SplitMix64::new(2);
            b.iter(|| {
                let src = NodeId((h.next_u64() % n as u64) as u32);
                chord.route(src, h.next_u64()).hops
            });
        });

        g.bench_with_input(BenchmarkId::new("naor_wieder_route", n), &n, |b, &n| {
            let mut h = SplitMix64::new(3);
            b.iter(|| {
                let src = NodeId((h.next_u64() % n as u64) as u32);
                nw.route(src, h.next_u64()).1
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dht);
criterion_main!(benches);
