//! GF(256) and decoder throughput: the mongering protocol's hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rendez_coding::gf256::mul_add_assign;
use rendez_coding::{Decoder, Encoder};

fn bench_gf256(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf256");
    for &len in &[64usize, 1_024, 16_384] {
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_with_input(BenchmarkId::new("mul_add_assign", len), &len, |b, &len| {
            let mut rng = SmallRng::seed_from_u64(1);
            let src: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let mut dst: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            b.iter(|| {
                mul_add_assign(&mut dst, &src, 0x53);
                dst[0]
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("decoder");
    for &k in &[8usize, 32] {
        g.bench_with_input(BenchmarkId::new("full_decode", k), &k, |b, &k| {
            let mut rng = SmallRng::seed_from_u64(2);
            let msg: Vec<u8> = (0..k * 64).map(|_| rng.gen()).collect();
            let enc = Encoder::from_message(&msg, k);
            b.iter(|| {
                let mut d = Decoder::new(k, enc.block_len());
                while !d.is_complete() {
                    d.ingest(enc.encode(&mut rng));
                }
                d.decode().expect("complete").len()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gf256);
criterion_main!(benches);
