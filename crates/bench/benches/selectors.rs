//! Selector throughput: the `select` call is the hot loop of every
//! dating round (`Bin + Bout` draws per round). Ablation: alias-method
//! weighted draw vs uniform vs DHT owner lookup (binary search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rendez_core::{AliasSelector, NodeSelector, UniformSelector};
use rendez_dht::DhtSelector;

const DRAWS: u64 = 10_000;

fn bench_selectors(c: &mut Criterion) {
    let mut g = c.benchmark_group("selectors");
    g.throughput(Throughput::Elements(DRAWS));
    for &n in &[1_000usize, 100_000] {
        let uniform = UniformSelector::new(n);
        let zipf = AliasSelector::zipf(n, 1.0);
        let dht = DhtSelector::random(n, 5);
        fn run(b: &mut criterion::Bencher<'_>, sel: &dyn NodeSelector) {
            let mut rng = SmallRng::seed_from_u64(9);
            b.iter(|| {
                let mut acc = 0u64;
                for _ in 0..DRAWS {
                    acc = acc.wrapping_add(sel.select(&mut rng).0 as u64);
                }
                acc
            });
        }
        g.bench_with_input(BenchmarkId::new("uniform", n), &n, |b, _| run(b, &uniform));
        g.bench_with_input(BenchmarkId::new("alias_zipf", n), &n, |b, _| run(b, &zipf));
        g.bench_with_input(BenchmarkId::new("dht_owner", n), &n, |b, _| run(b, &dht));
    }
    g.finish();
}

criterion_group!(benches, bench_selectors);
criterion_main!(benches);
