//! Micro-benchmarks of the cache-resident message plane: SoA envelope
//! batches, the hoisted fate kernel, and the end-to-end delivery path.
//!
//! Three groups:
//!
//! * `emit` — filling an [`EnvBatch`] through run-length `push` vs the
//!   legacy `Vec<Envelope>` stream, and reading it back in emission
//!   order (`iter` reconstructs seqs from run headers);
//! * `fate` — per-message [`Conditions::fate`] vs the hoisted
//!   [`Conditions::fate_run`] kernel that derives the per-source seed
//!   once per run;
//! * `deliver` — a full dating run on the sequential executor, which is
//!   dominated by the route → slot-row → counting-delivery pass.
//!
//! Set `RENDEZ_BENCH_QUICK=1` for the CI smoke mode (smallest size,
//! few samples) that keeps the harness from bit-rotting without
//! spending CI minutes on statistics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rendez_core::{Platform, UniformSelector};
use rendez_runtime::{
    Conditions, EnvBatch, Envelope, Executor, RunConfig, RuntimeDating, SequentialExecutor,
};
use rendez_sim::NodeId;

const CYCLES: u64 = 3;

/// Synthetic emission trace: `senders` sources each emit `per_src`
/// messages in one burst (the executor phase pattern), destinations
/// striding over the id space.
fn emission(senders: usize, per_src: usize) -> Vec<Envelope<u64>> {
    let n = senders * 4;
    let mut out = Vec::with_capacity(senders * per_src);
    for s in 0..senders {
        for k in 0..per_src {
            out.push(Envelope {
                src: NodeId(s as u32),
                dst: NodeId(((s * 7 + k * 13) % n) as u32),
                seq: k as u64,
                msg: (s * per_src + k) as u64,
            });
        }
    }
    out
}

fn bench_emit(c: &mut Criterion) {
    let quick = std::env::var("RENDEZ_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let trace = emission(1_000, 16);
    let mut g = c.benchmark_group("delivery_kernel/emit");
    g.sample_size(if quick { 3 } else { 20 });
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function(BenchmarkId::new("envbatch_push", ""), |b| {
        let mut batch = EnvBatch::new();
        b.iter(|| {
            batch.clear();
            for e in &trace {
                batch.push(e.src, e.seq, e.dst, e.msg);
            }
            batch.len()
        });
    });
    g.bench_function(BenchmarkId::new("legacy_vec_push", ""), |b| {
        let mut envs: Vec<Envelope<u64>> = Vec::new();
        b.iter(|| {
            envs.clear();
            envs.extend(trace.iter().cloned());
            envs.len()
        });
    });
    g.bench_function(BenchmarkId::new("envbatch_iter", ""), |b| {
        let batch = EnvBatch::from_envelopes(&trace);
        b.iter(|| {
            batch
                .iter()
                .map(|(_, seq, dst, msg)| seq ^ dst.0 as u64 ^ *msg)
                .fold(0u64, u64::wrapping_add)
        });
    });
    g.finish();
}

fn bench_fate(c: &mut Criterion) {
    let quick = std::env::var("RENDEZ_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let trace = emission(1_000, 16);
    let cond = Conditions::with_loss(0.05);
    let seed = 0x5CA1E;
    let mut g = c.benchmark_group("delivery_kernel/fate");
    g.sample_size(if quick { 3 } else { 20 });
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function(BenchmarkId::new("per_envelope", ""), |b| {
        b.iter(|| {
            trace
                .iter()
                .filter_map(|e| cond.fate(seed, e))
                .fold(0u64, u64::wrapping_add)
        });
    });
    g.bench_function(BenchmarkId::new("hoisted_run", ""), |b| {
        let batch = EnvBatch::from_envelopes(&trace);
        b.iter(|| {
            let mut acc = 0u64;
            batch.for_each_run(|run, _dsts, msgs| {
                let fr = cond.fate_run(seed, run.src);
                for k in 0..msgs.len() as u64 {
                    if let Some(l) = fr.fate(run.first_seq + k) {
                        acc = acc.wrapping_add(l);
                    }
                }
            });
            acc
        });
    });
    g.finish();
}

fn bench_deliver(c: &mut Criterion) {
    let quick = std::env::var("RENDEZ_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let n: usize = if quick { 1_000 } else { 10_000 };
    let mut g = c.benchmark_group("delivery_kernel/deliver");
    g.sample_size(if quick { 3 } else { 10 });
    g.throughput(Throughput::Elements(CYCLES * n as u64));
    g.bench_with_input(BenchmarkId::new("dating_sequential", n), &n, |b, &n| {
        b.iter(|| {
            let mut proto = RuntimeDating::new(Platform::unit(n), UniformSelector::new(n), CYCLES);
            let rounds = proto.total_rounds();
            SequentialExecutor
                .run(&mut proto, n, &RunConfig::seeded(1).max_rounds(rounds))
                .expect_output()
                .total_dates()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_emit, bench_fate, bench_deliver);
criterion_main!(benches);
