#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # rendezvous
//!
//! A complete Rust reproduction of *"Heterogenous dating service with
//! application to rumor spreading"* (Olivier Beaumont, Philippe Duchon,
//! Miroslaw Korzeniowski; IEEE IPDPS 2008 / INRIA RR-6168).
//!
//! The **dating service** is a fully decentralized, round-based
//! matchmaking primitive for heterogeneous networks: every node `i` sends
//! `bout(i)` *offers* and `bin(i)` *requests* to nodes drawn from a shared
//! (arbitrary!) distribution; every node matches `min(s, r)` of the
//! offers/requests it received uniformly at random; matched pairs — dates
//! — exchange one unit message. With `m = min(ΣBin, ΣBout)`, the service
//! arranges `Ω(m)` dates per round w.h.p. for *any* common selection
//! distribution, never exceeds any node's bandwidth, and spreads a rumor
//! to all `n` nodes in `O(log n)` rounds.
//!
//! ## Crate map (re-exported as modules here)
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | the dating service: platforms, selectors, Algorithm 1 (oracle + distributed), matchings, capacity invariants, analytic predictions, overhead and pipelining models |
//! | [`gossip`] | rumor spreading over dates + the PUSH/PULL baseline family of Figure 2, Theorem 4 phase instrumentation, Theorem 10 heterogeneous experiments, multi-rumor |
//! | [`dht`] | Chord-style DHT substrate: random ring, arc ownership, finger routing, Naor–Wieder routing, and the §4 DHT-based selector |
//! | [`coding`] | §5 extension: GF(256) randomized network coding for rumor mongering |
//! | [`storage`] | §5 extension: replicated storage via dating-driven block exchange |
//! | [`sim`] | deterministic synchronous round engine, churn, metrics, parallel Monte-Carlo runner |
//! | [`runtime`] | sans-I/O round runtime: per-node protocol state machines behind pluggable sequential / sharded-parallel / conditioned executors, plus the persistent [`WorkerPool`](runtime::WorkerPool) |
//! | [`fleet`] | Monte-Carlo fleet engine: persistent-pool sweep scheduler with streaming (Welford) aggregation into machine-readable sweep reports |
//! | [`stats`] | Welford summaries, histograms, Poisson/Binomial/Hypergeometric/Geometric/Zipf, chi-square and KS tests |
//!
//! ## Quickstart
//!
//! ```rust
//! use rendezvous::prelude::*;
//! use rand::SeedableRng;
//!
//! // 100 nodes, bin = bout = 1 (the paper's Figure 1 workload).
//! let platform = Platform::unit(100);
//! let selector = UniformSelector::new(100);
//! let service = DatingService::new(&platform, &selector);
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
//! let outcome = service.run_round(&mut rng);
//!
//! // Ω(m) dates, and nobody's bandwidth was exceeded.
//! assert!(outcome.date_count() > 30);
//! assert!(verify_dates(&platform, &outcome.dates).is_ok());
//! ```
//!
//! See `examples/` for rumor spreading, DHT-backed dating, heterogeneous
//! broadcast, network-coded mongering and storage exchange; see
//! `EXPERIMENTS.md` for the paper-vs-measured record of every figure.

pub use rendez_coding as coding;
pub use rendez_core as core;
pub use rendez_dht as dht;
pub use rendez_fleet as fleet;
pub use rendez_gossip as gossip;
pub use rendez_runtime as runtime;
pub use rendez_sim as sim;
pub use rendez_stats as stats;
pub use rendez_storage as storage;

/// The most common imports, one `use` away.
pub mod prelude {
    pub use rendez_core::{
        verify_dates, AliasSelector, Date, DatingService, NodeCaps, NodeSelector, Platform,
        RoundOutcome, RoundWorkspace, UniformSelector,
    };
    pub use rendez_dht::DhtSelector;
    pub use rendez_fleet::{Fleet, SweepReport, SweepSpec};
    pub use rendez_gossip::{run_spread, DatingSpread, SpreadProtocol};
    pub use rendez_runtime::{
        AsyncProtocol, AsyncSpread, AsyncSpreadSummary, Churn, EventExecutor, ExecChoice, Executor,
        RunConfig, RuntimeDating, Scenario, ScenarioError, SequentialExecutor, ShardedExecutor,
        Spreader, TimeAxis, TimeModel, WorkloadOutput,
    };
    pub use rendez_sim::NodeId;
}
