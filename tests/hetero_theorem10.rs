//! Theorem 10 / Corollary 11 cross-crate checks: heterogeneous platforms
//! spread to their well-provisioned nodes in o(log n) rounds.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rendezvous::gossip::hetero::{
    run_hetero_trial, strongest_node, theorem10_prediction, weakest_node,
};
use rendezvous::prelude::*;

fn mean_avg_rounds(platform: &Platform, strong_source: bool, trials: u64, seed: u64) -> f64 {
    let selector = UniformSelector::new(platform.n());
    let mut total = 0u64;
    for t in 0..trials {
        let mut rng = SmallRng::seed_from_u64(seed + t);
        let source = if strong_source {
            strongest_node(platform)
        } else {
            weakest_node(platform)
        };
        let out = run_hetero_trial(platform, &selector, source, &mut rng, 100_000);
        assert!(out.avg_completed && out.all_completed);
        total += out.rounds_avg_nodes;
    }
    total as f64 / trials as f64
}

#[test]
fn sqrt_n_average_bandwidth_gives_constant_rounds() {
    // m/n = √n ⇒ bound = log n / log √n = 2; constants make it a few
    // rounds, but it must not scale with n.
    let r1 = mean_avg_rounds(&Platform::power_law(1_024, 1.1, 32.0, 1), true, 15, 100);
    let r2 = mean_avg_rounds(&Platform::power_law(16_384, 1.1, 128.0, 2), true, 10, 200);
    assert!(r1 < 12.0, "n=1024: {r1} rounds");
    assert!(r2 < 12.0, "n=16384: {r2} rounds");
    assert!(
        r2 < r1 + 4.0,
        "rounds grew with n ({r1} → {r2}) despite √n bandwidth"
    );
}

#[test]
fn log_n_average_beats_unit_platform() {
    let n = 4_096;
    let rich = Platform::power_law(n, 1.1, (n as f64).ln(), 3);
    let rich_rounds = mean_avg_rounds(&rich, true, 15, 300);

    // Unit platform baseline: full Θ(log n) spreading.
    let unit = Platform::unit(n);
    let selector = UniformSelector::new(n);
    let mut total = 0u64;
    for t in 0..15u64 {
        let mut rng = SmallRng::seed_from_u64(400 + t);
        let mut p = DatingSpread::new(&selector);
        let r = rendezvous::gossip::run_spread(&mut p, &unit, NodeId(0), &mut rng, 100_000);
        total += r.rounds;
    }
    let unit_rounds = total as f64 / 15.0;
    assert!(
        rich_rounds < unit_rounds,
        "rich {rich_rounds} not faster than unit {unit_rounds}"
    );
    // And it should be in the ballpark of the bound shape (generous
    // constant; the bound is asymptotic).
    let bound = theorem10_prediction(n, rich.m() as f64 / n as f64);
    assert!(
        rich_rounds < 6.0 * bound + 10.0,
        "rich {rich_rounds} vs bound {bound}"
    );
}

#[test]
fn corollary11_weak_source_pays_constant_warmup() {
    let n = 2_048;
    let platform = Platform::power_law(n, 1.1, (n as f64).sqrt(), 5);
    let strong = mean_avg_rounds(&platform, true, 15, 500);
    let weak = mean_avg_rounds(&platform, false, 15, 600);
    assert!(weak >= strong - 1.0, "weak start cannot beat strong start");
    assert!(
        weak - strong < 10.0,
        "weak-source warm-up should be O(1) rounds: strong {strong}, weak {weak}"
    );
}
