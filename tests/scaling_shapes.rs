//! Quantitative asymptotic-shape checks: fit measured data against the
//! paper's claimed growth laws instead of eyeballing.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rendezvous::gossip::run_spread;
use rendezvous::prelude::*;
use rendezvous::stats::fit_log2;

fn mean_dating_rounds(n: usize, trials: u64, seed: u64) -> f64 {
    let platform = Platform::unit(n);
    let selector = UniformSelector::new(n);
    let mut total = 0u64;
    for t in 0..trials {
        let mut rng = SmallRng::seed_from_u64(seed + t);
        let mut p = DatingSpread::new(&selector);
        let r = run_spread(&mut p, &platform, NodeId(0), &mut rng, 1_000_000);
        assert!(r.completed);
        total += r.rounds;
    }
    total as f64 / trials as f64
}

#[test]
fn dating_rounds_scale_as_log_n() {
    // Theorem 4 quantified: rounds ≈ a·log₂(n) + b with an excellent
    // linear fit in log n and a modest slope.
    let ns = [64usize, 256, 1024, 4096, 16384];
    let ys: Vec<f64> = ns
        .iter()
        .map(|&n| mean_dating_rounds(n, 12, n as u64))
        .collect();
    let xs: Vec<f64> = ns.iter().map(|&n| n as f64).collect();
    let f = fit_log2(&xs, &ys);
    assert!(
        f.r_squared > 0.98,
        "rounds vs log n not linear: R² = {:.4} (data {ys:?})",
        f.r_squared
    );
    assert!(
        f.slope > 0.5 && f.slope < 6.0,
        "slope {:.2} out of the O(log n) band",
        f.slope
    );
}

#[test]
fn push_rounds_scale_as_log_n_with_known_constant() {
    // PUSH's classic constant is log₂ n + ln n ≈ 2.44·log₂ n; check the
    // fitted slope lands near it.
    let ns = [128usize, 512, 2048, 8192];
    let ys: Vec<f64> = ns
        .iter()
        .map(|&n| {
            let platform = Platform::unit(n);
            let mut total = 0u64;
            let trials = 12;
            for t in 0..trials {
                let mut rng = SmallRng::seed_from_u64(9000 + n as u64 + t);
                let mut p = rendezvous::gossip::Push::new();
                let r = run_spread(&mut p, &platform, NodeId(0), &mut rng, 1_000_000);
                total += r.rounds;
            }
            total as f64 / trials as f64
        })
        .collect();
    let xs: Vec<f64> = ns.iter().map(|&n| n as f64).collect();
    let f = fit_log2(&xs, &ys);
    assert!(f.r_squared > 0.97, "R² = {:.4}", f.r_squared);
    assert!(
        (1.6..3.4).contains(&f.slope),
        "PUSH slope {:.2} far from 1 + 1/ln 2 ≈ 2.44",
        f.slope
    );
}

#[test]
fn date_fraction_is_flat_in_n() {
    // Figure 1's uniform series converges: the fraction must not trend
    // with n (slope ≈ 0 against log n).
    use rendezvous::core::CountWorkspace;
    let ns = [100usize, 1_000, 10_000];
    let ys: Vec<f64> = ns
        .iter()
        .map(|&n| {
            let platform = Platform::unit(n);
            let selector = UniformSelector::new(n);
            let svc = DatingService::new(&platform, &selector);
            let mut ws = CountWorkspace::new(n);
            let mut rng = SmallRng::seed_from_u64(n as u64);
            let rounds = 300;
            let mut total = 0u64;
            for _ in 0..rounds {
                total += svc.count_dates(&mut ws, &mut rng);
            }
            total as f64 / (rounds as f64 * n as f64)
        })
        .collect();
    let xs: Vec<f64> = ns.iter().map(|&n| n as f64).collect();
    let f = fit_log2(&xs, &ys);
    assert!(
        f.slope.abs() < 0.01,
        "fraction trends with n: slope {:.5}, data {ys:?}",
        f.slope
    );
}
