//! Runtime acceptance tests.
//!
//! 1. **Cross-executor equivalence**: `SequentialExecutor` and
//!    `ShardedExecutor` produce identical informed-set traces (per-round
//!    digests), round counts, outputs and message statistics for the same
//!    seed — for ideal and conditioned channels alike.
//! 2. **Statistical fidelity**: the runtime-hosted dating service draws
//!    its date counts from the same distribution as the oracle sampler,
//!    checked with the same KS harness as `oracle_vs_distributed`.
//! 3. **Property sweep**: random `(workload, shards, loss, latency,
//!    churn)` combinations — not just the pairwise fixtures — must keep
//!    sequential and sharded reports bit-identical.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rendezvous::prelude::*;
use rendezvous::runtime::{
    ConditionedExecutor, Conditions, LatencyDist, RtDatingSpread, RtPushPull,
};
use rendezvous::stats::ks_two_sample;

#[test]
fn spread_trace_identical_across_executors() {
    let n = 2_000;
    let cfg = RunConfig::seeded(0xE0).max_rounds(5_000);
    let mut proto = RtDatingSpread::new(Platform::unit(n), UniformSelector::new(n), NodeId(0));
    let seq = SequentialExecutor.run(&mut proto, n, &cfg);
    assert!(seq.completed, "spread must complete");

    for shards in [2, 3, 8, 13] {
        let mut proto = RtDatingSpread::new(Platform::unit(n), UniformSelector::new(n), NodeId(0));
        let sh = ShardedExecutor::new(shards).run(&mut proto, n, &cfg);
        assert_eq!(seq.rounds, sh.rounds, "round count, shards={shards}");
        assert_eq!(
            seq.digests, sh.digests,
            "informed-set trace, shards={shards}"
        );
        assert_eq!(seq.output, sh.output, "informed history, shards={shards}");
        assert_eq!(seq.stats, sh.stats, "message accounting, shards={shards}");
    }
}

#[test]
fn push_pull_trace_identical_across_executors() {
    let n = 1_500;
    let cfg = RunConfig::seeded(0xE1).max_rounds(1_000);
    let mut proto = RtPushPull::new(n, NodeId(3));
    let seq = SequentialExecutor.run(&mut proto, n, &cfg);
    assert!(seq.completed);

    let mut proto = RtPushPull::new(n, NodeId(3));
    let sh = ShardedExecutor::new(7).run(&mut proto, n, &cfg);
    assert_eq!(seq.digests, sh.digests);
    assert_eq!(seq.output, sh.output);
}

#[test]
fn conditioned_runs_are_executor_independent() {
    // Loss and latency fates are hashed per message, so conditioning must
    // commute with the execution strategy.
    let n = 800;
    let cfg = RunConfig::seeded(0xE2).max_rounds(5_000);
    let conditions = Conditions {
        drop_prob: 0.15,
        latency: LatencyDist::Uniform { min: 1, max: 3 },
    };
    let run = |shards: Option<usize>| {
        let mut proto = RtDatingSpread::new(Platform::unit(n), UniformSelector::new(n), NodeId(0));
        match shards {
            None => {
                ConditionedExecutor::new(SequentialExecutor, conditions).run(&mut proto, n, &cfg)
            }
            Some(s) => ConditionedExecutor::new(ShardedExecutor::new(s), conditions)
                .run(&mut proto, n, &cfg),
        }
    };
    let seq = run(None);
    assert!(seq.stats.dropped > 0, "loss must bite");
    for shards in [2, 5] {
        let sh = run(Some(shards));
        assert_eq!(seq.digests, sh.digests, "shards={shards}");
        assert_eq!(seq.stats, sh.stats, "shards={shards}");
        assert_eq!(seq.output, sh.output, "shards={shards}");
    }
}

#[test]
fn seeds_actually_matter() {
    let n = 500;
    let run = |seed: u64| {
        let mut proto = RtDatingSpread::new(Platform::unit(n), UniformSelector::new(n), NodeId(0));
        SequentialExecutor.run(&mut proto, n, &RunConfig::seeded(seed).max_rounds(5_000))
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(
        a.digests, b.digests,
        "different seeds must explore different runs"
    );
}

fn oracle_samples(platform: &Platform, trials: usize, seed: u64) -> Vec<f64> {
    let selector = UniformSelector::new(platform.n());
    let svc = DatingService::new(platform, &selector);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ws = RoundWorkspace::new(platform.n());
    (0..trials)
        .map(|_| svc.run_round_with(&mut ws, &mut rng).date_count() as f64)
        .collect()
}

fn runtime_samples(platform: &Platform, cycles: u64, seed: u64) -> Vec<f64> {
    let n = platform.n();
    let mut proto = RuntimeDating::new(platform.clone(), UniformSelector::new(n), cycles);
    let rounds = proto.total_rounds();
    let out = ShardedExecutor::new(4)
        .run(&mut proto, n, &RunConfig::seeded(seed).max_rounds(rounds))
        .expect_output();
    out.dates_per_cycle.iter().map(|&d| d as f64).collect()
}

#[test]
fn runtime_dating_matches_oracle_distribution_unit_platform() {
    let platform = Platform::unit(300);
    let a = oracle_samples(&platform, 400, 0xD1);
    let b = runtime_samples(&platform, 400, 0xD2);
    let r = ks_two_sample(&a, &b);
    assert!(
        r.accepts(0.001),
        "oracle vs runtime diverge: D={:.4} p={:.5}",
        r.statistic,
        r.p_value
    );
}

#[test]
fn runtime_dating_matches_oracle_distribution_heterogeneous() {
    let platform = Platform::power_law(200, 1.0, 3.0, 9);
    let a = oracle_samples(&platform, 400, 0xD3);
    let b = runtime_samples(&platform, 400, 0xD4);
    let r = ks_two_sample(&a, &b);
    assert!(
        r.accepts(0.001),
        "heterogeneous: oracle vs runtime diverge: D={:.4} p={:.5}",
        r.statistic,
        r.p_value
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The determinism contract, fuzzed: any workload under any
    /// combination of loss, latency spread and churn must produce the
    /// same report on the sequential executor and on a sharded executor
    /// with an arbitrary shard count — including shard counts larger
    /// than the latency window and spreads that leave messages in
    /// flight at halt. Until this sweep, loss + latency + churn were
    /// only pinned pairwise.
    #[test]
    fn random_conditions_keep_executors_bit_identical(
        seed in 0u64..1_000_000,
        (n, shards) in (40usize..200, 2usize..17),
        proto_idx in 0usize..8,
        (drop_milli, lat_kind, lat_min, lat_span) in (0u32..350, 0u8..3, 1u64..4, 0u64..5),
        (churn_kind, churn_milli) in (0u8..3, 10u32..300),
    ) {
        let latency = match lat_kind {
            0 => LatencyDist::Fixed(lat_min),
            1 => LatencyDist::Uniform { min: lat_min, max: lat_min + lat_span },
            _ => LatencyDist::Geometric { p: 0.2 + 0.15 * lat_span as f64, cap: 9 },
        };
        let churn = match churn_kind {
            0 => Churn::none(),
            1 => Churn::intermittent(churn_milli as f64 / 1000.0),
            _ => Churn::crash_stop(churn_milli as f64 / 1000.0, 15),
        };
        let conditions = Conditions { drop_prob: drop_milli as f64 / 1000.0, latency };
        let base = Scenario::new(n)
            .protocol(Spreader::ALL[proto_idx])
            .cycles(12)
            .conditions(conditions)
            .churn(churn)
            .max_rounds(240);
        let seq = base.clone().run(seed).expect("scenario must validate");
        let sh = base
            .clone()
            .sharded(shards)
            .run(seed)
            .expect("scenario must validate");
        prop_assert_eq!(seq.rounds, sh.rounds);
        prop_assert_eq!(seq.completed, sh.completed);
        prop_assert_eq!(&seq.digests, &sh.digests);
        prop_assert_eq!(seq.stats, sh.stats);
        prop_assert_eq!(seq.output, sh.output);
    }
}

#[test]
fn runtime_transport_is_lossless_under_ideal_conditions() {
    let n = 250u64;
    let cycles = 20u64;
    let mut proto = RuntimeDating::new(
        Platform::unit(n as usize),
        UniformSelector::new(n as usize),
        cycles,
    );
    let rounds = proto.total_rounds();
    let r = SequentialExecutor
        .run(
            &mut proto,
            n as usize,
            &RunConfig::seeded(0xD5).max_rounds(rounds),
        )
        .expect_output();
    assert_eq!(r.payloads_received, r.total_dates());
    assert_eq!(r.answers_received, 2 * n * cycles);
}
