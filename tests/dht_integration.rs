//! Cross-crate DHT integration: the §4 practical instantiation end to
//! end — ring placement, DHT-based selection, dating, spreading, routing
//! and the pipelining model fed by measured hop counts.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rendezvous::core::{analysis, pipeline, verify_dates};
use rendezvous::dht::{ChordNet, DhtSelector, NaorWiederNet, Ring};
use rendezvous::gossip::run_spread;
use rendezvous::prelude::*;

#[test]
fn dht_dating_beats_uniform_fraction() {
    // §2 conjecture + §4 measurement: every random DHT ring we try
    // arranges at least the uniform fraction of dates.
    let n = 600;
    let platform = Platform::unit(n);
    let uniform_limit = analysis::uniform_ratio_limit();
    for ring_seed in 0..5u64 {
        let selector = DhtSelector::random(n, ring_seed);
        let svc = DatingService::new(&platform, &selector);
        let mut rng = SmallRng::seed_from_u64(100 + ring_seed);
        let mut ws = RoundWorkspace::new(n);
        let rounds = 300;
        let mut total = 0usize;
        for _ in 0..rounds {
            let out = svc.run_round_with(&mut ws, &mut rng);
            verify_dates(&platform, &out.dates).expect("capacity");
            total += out.date_count();
        }
        let frac = total as f64 / (rounds * n) as f64;
        assert!(
            frac > uniform_limit - 0.01,
            "ring {ring_seed}: fraction {frac} below uniform {uniform_limit}"
        );
    }
}

#[test]
fn prediction_matches_measurement_per_ring() {
    let n = 400;
    let platform = Platform::unit(n);
    let selector = DhtSelector::random(n, 42);
    let predicted =
        analysis::expected_dates_weighted(&selector.weights(), n as u64, n as u64) / n as f64;
    let svc = DatingService::new(&platform, &selector);
    let mut rng = SmallRng::seed_from_u64(43);
    let mut ws = RoundWorkspace::new(n);
    let rounds = 500;
    let mut total = 0usize;
    for _ in 0..rounds {
        total += svc.run_round_with(&mut ws, &mut rng).date_count();
    }
    let measured = total as f64 / (rounds * n) as f64;
    assert!(
        (measured - predicted).abs() < 0.015,
        "measured {measured} vs predicted {predicted}"
    );
}

#[test]
fn rumor_spreads_over_dht_dates() {
    let n = 1000;
    let platform = Platform::unit(n);
    let selector = DhtSelector::random(n, 7);
    let mut rng = SmallRng::seed_from_u64(8);
    let mut p = DatingSpread::new(&selector);
    let r = run_spread(&mut p, &platform, NodeId(0), &mut rng, 100_000);
    assert!(r.completed);
    assert!(
        (r.rounds as f64) < 12.0 * (n as f64).log2() + 40.0,
        "{} rounds at n={n}",
        r.rounds
    );
}

#[test]
fn routing_substrates_agree_on_ownership() {
    let ring = Ring::random(500, 9);
    let chord = ChordNet::build(ring.clone());
    let nw = NaorWiederNet::new(ring.clone(), 3);
    let mut rng = SmallRng::seed_from_u64(10);
    use rand::Rng;
    for _ in 0..200 {
        let key: u64 = rng.gen();
        let src = NodeId(rng.gen_range(0..500));
        let c = chord.route(src, key);
        let (owner_nw, _) = nw.route(src, key);
        assert_eq!(c.owner, ring.owner(key));
        assert_eq!(owner_nw, ring.owner(key));
    }
}

#[test]
fn pipelining_model_with_measured_hops() {
    let n = 2000;
    let ring = Ring::random(n, 11);
    let chord = ChordNet::build(ring);
    let (mean_hops, _) = chord.lookup_hops(1000, 12);
    let hops = mean_hops.round() as u64;
    assert!(hops >= 2, "a {n}-node ring cannot route in {hops} hops");
    let k = 200;
    let seq = pipeline::sequential_makespan(k, hops);
    let pip = pipeline::pipelined_makespan(k, hops);
    // §4's claim: k rounds in Θ(log n + k), vs Θ(k·log n) sequential.
    assert!(
        pip < seq / 4,
        "pipelining gained too little: {pip} vs {seq}"
    );
    assert!(pip <= 2 * hops + 1 + k);
}

#[test]
fn churned_ring_still_serves_the_selector() {
    // Nodes joining/leaving re-shape the arcs but the selector interface
    // keeps working over a rebuilt ring.
    let n = 300;
    let mut chord = ChordNet::build(Ring::random(n, 13));
    chord.leave(NodeId(5));
    chord.leave(NodeId(17));
    chord.join(NodeId(5), 0xABCD_EF01_2345_6789);
    chord.stabilize_all();
    // After churn the ring has 299 distinct ids + rejoined node 5 = 300−1.
    // Rebuild a contiguous-id ring for the selector from scratch instead:
    let fresh = DhtSelector::random(n - 1, 14);
    let platform = Platform::unit(n - 1);
    let svc = DatingService::new(&platform, &fresh);
    let mut rng = SmallRng::seed_from_u64(15);
    let out = svc.run_round(&mut rng);
    assert!(out.date_count() > 0);
}
