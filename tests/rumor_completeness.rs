//! Theorem 4 end-to-end: dating-service rumor spreading informs everyone
//! in O(log n) rounds, with the three-phase structure the proof uses.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rendezvous::gossip::{phase_breakdown, run_spread};
use rendezvous::prelude::*;

#[test]
fn completes_in_logarithmic_rounds_across_sizes() {
    for &n in &[64usize, 256, 1024, 4096] {
        let platform = Platform::unit(n);
        let selector = UniformSelector::new(n);
        let log2n = (n as f64).log2();
        let trials = 20;
        let mut total = 0u64;
        for t in 0..trials {
            let mut rng = SmallRng::seed_from_u64(n as u64 * 100 + t);
            let mut p = DatingSpread::new(&selector);
            let r = run_spread(&mut p, &platform, NodeId(0), &mut rng, 100_000);
            assert!(r.completed, "n={n} trial {t} did not complete");
            // Generous per-run w.h.p. cap.
            assert!(
                (r.rounds as f64) < 15.0 * log2n + 40.0,
                "n={n}: {} rounds breaks the O(log n) cap",
                r.rounds
            );
            total += r.rounds;
        }
        let mean = total as f64 / trials as f64;
        assert!(
            mean < 6.0 * log2n + 15.0,
            "n={n}: mean {mean} rounds is not O(log n)-like"
        );
    }
}

#[test]
fn informed_set_grows_monotonically_and_fully() {
    let n = 2048;
    let platform = Platform::unit(n);
    let selector = UniformSelector::new(n);
    let mut rng = SmallRng::seed_from_u64(1);
    let mut p = DatingSpread::new(&selector);
    let r = run_spread(&mut p, &platform, NodeId(7), &mut rng, 100_000);
    assert!(r.completed);
    assert_eq!(r.informed_history[0], 1);
    assert_eq!(*r.informed_history.last().unwrap(), n as u64);
    for w in r.informed_history.windows(2) {
        assert!(w[1] >= w[0], "informed set shrank");
    }
}

#[test]
fn all_three_phases_are_logarithmic() {
    let n = 4096;
    let platform = Platform::unit(n);
    let selector = UniformSelector::new(n);
    let log2n = (n as f64).log2();
    for seed in 0..10u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut p = DatingSpread::new(&selector);
        let r = run_spread(&mut p, &platform, NodeId(0), &mut rng, 100_000);
        let phases = phase_breakdown(&r.it_history, platform.m(), n);
        assert_eq!(phases.total(), r.rounds);
        for (name, rounds) in [
            ("phase1", phases.phase1),
            ("phase2", phases.phase2),
            ("phase3", phases.phase3),
        ] {
            assert!(
                (rounds as f64) < 10.0 * log2n + 30.0,
                "{name} took {rounds} rounds at n={n}"
            );
        }
    }
}

#[test]
fn spreads_from_any_source() {
    let n = 512;
    let platform = Platform::unit(n);
    let selector = UniformSelector::new(n);
    for source in [0u32, 1, 255, 511] {
        let mut rng = SmallRng::seed_from_u64(source as u64);
        let mut p = DatingSpread::new(&selector);
        let r = run_spread(&mut p, &platform, NodeId(source), &mut rng, 100_000);
        assert!(r.completed, "source {source} failed");
    }
}

#[test]
fn works_on_heterogeneous_c_bounded_platforms() {
    // The paper's model allows bin ≠ bout up to factor C; spreading must
    // still complete.
    let caps: Vec<NodeCaps> = (0..400)
        .map(|i| match i % 3 {
            0 => NodeCaps {
                bw_in: 2,
                bw_out: 1,
            },
            1 => NodeCaps {
                bw_in: 1,
                bw_out: 2,
            },
            _ => NodeCaps {
                bw_in: 1,
                bw_out: 1,
            },
        })
        .collect();
    let platform = Platform::new(caps);
    assert!(platform.respects_ratio(2.0));
    let selector = UniformSelector::new(400);
    let mut rng = SmallRng::seed_from_u64(3);
    let mut p = DatingSpread::new(&selector);
    let r = run_spread(&mut p, &platform, NodeId(0), &mut rng, 100_000);
    assert!(r.completed);
    assert!(r.rounds < 200);
}
