//! §5 extensions end to end, including over DHT-based selection: coded
//! mongering and storage exchange share the dating service as their only
//! coordination mechanism.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rendezvous::coding::{run_mongering, MongeringConfig, TransferMode};
use rendezvous::dht::DhtSelector;
use rendezvous::prelude::*;
use rendezvous::storage::{crash_and_recover, run_exchange, StorageSystem};

#[test]
fn coded_mongering_over_dht_selector() {
    let n = 150;
    let platform = Platform::unit(n);
    let selector = DhtSelector::random(n, 1);
    let mut rng = SmallRng::seed_from_u64(2);
    let r = run_mongering(
        &platform,
        &selector,
        NodeId(0),
        TransferMode::Coded,
        MongeringConfig {
            k: 8,
            block_len: 16,
            max_rounds: 50_000,
        },
        &mut rng,
    );
    assert!(r.completed, "coded mongering over DHT stalled");
    assert!(r.decoded_ok, "decoded data mismatched the source");
}

#[test]
fn coded_beats_uncoded_round_count() {
    let n = 120;
    let k = 24;
    let platform = Platform::unit(n);
    let selector = UniformSelector::new(n);
    let trials = 5;
    let (mut coded, mut uncoded) = (0u64, 0u64);
    for seed in 0..trials {
        let cfg = MongeringConfig {
            k,
            block_len: 16,
            max_rounds: 100_000,
        };
        let mut rng = SmallRng::seed_from_u64(10 + seed);
        let c = run_mongering(
            &platform,
            &selector,
            NodeId(0),
            TransferMode::Coded,
            cfg,
            &mut rng,
        );
        let mut rng = SmallRng::seed_from_u64(20 + seed);
        let u = run_mongering(
            &platform,
            &selector,
            NodeId(0),
            TransferMode::Uncoded,
            cfg,
            &mut rng,
        );
        assert!(c.completed && u.completed);
        coded += c.rounds;
        uncoded += u.rounds;
    }
    assert!(
        coded < uncoded,
        "coding did not help: coded {coded} vs uncoded {uncoded}"
    );
}

#[test]
fn storage_exchange_over_dht_selector() {
    let n = 100;
    let mut sys = StorageSystem::uniform(n, 12, 2, 3);
    let selector = DhtSelector::random(n, 3);
    let mut rng = SmallRng::seed_from_u64(4);
    let build = run_exchange(&mut sys, &selector, 4, &mut rng, 100_000);
    assert!(build.completed, "DHT-selected exchange stalled");
    sys.check_invariants().expect("invariants");
    // Skewed DHT selection must not break load limits (capacity is the
    // hard bound; imbalance may be higher than uniform).
    assert!(
        build.load_imbalance < 2.5,
        "imbalance {}",
        build.load_imbalance
    );
}

#[test]
fn storage_survives_repeated_crash_cycles() {
    let n = 80;
    let mut sys = StorageSystem::uniform(n, 14, 2, 3);
    let selector = UniformSelector::new(n);
    let mut rng = SmallRng::seed_from_u64(5);
    let build = run_exchange(&mut sys, &selector, 4, &mut rng, 100_000);
    assert!(build.completed);
    for wave in 0..3 {
        let r = crash_and_recover(&mut sys, &selector, 5, 4, &mut rng, 100_000);
        assert!(r.restored, "wave {wave} failed to recover");
        sys.check_invariants()
            .unwrap_or_else(|e| panic!("wave {wave}: {e}"));
        // Bring the crashed nodes back so later waves have victims.
        for v in 0..n as u32 {
            if !sys.is_online(NodeId(v)) {
                sys.recover(NodeId(v));
            }
        }
    }
}
