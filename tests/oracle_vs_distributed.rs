//! The two implementations of Algorithm 1 — the fast oracle sampler and
//! the real message-passing protocol — must produce identically
//! distributed date counts, and both must respect capacity.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rendezvous::core::{run_distributed, verify_dates};
use rendezvous::prelude::*;
use rendezvous::stats::ks_two_sample;

fn oracle_samples(platform: &Platform, trials: usize, seed: u64) -> Vec<f64> {
    let selector = UniformSelector::new(platform.n());
    let svc = DatingService::new(platform, &selector);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ws = RoundWorkspace::new(platform.n());
    (0..trials)
        .map(|_| svc.run_round_with(&mut ws, &mut rng).date_count() as f64)
        .collect()
}

fn distributed_samples(platform: &Platform, cycles: u64, seed: u64) -> Vec<f64> {
    let r = run_distributed(
        platform.clone(),
        UniformSelector::new(platform.n()),
        cycles,
        seed,
    );
    r.dates_per_cycle.iter().map(|&d| d as f64).collect()
}

#[test]
fn date_count_distributions_match_unit_platform() {
    let platform = Platform::unit(300);
    let a = oracle_samples(&platform, 400, 1);
    let b = distributed_samples(&platform, 400, 2);
    let r = ks_two_sample(&a, &b);
    assert!(
        r.accepts(0.001),
        "oracle vs distributed diverge: D={:.4} p={:.5}",
        r.statistic,
        r.p_value
    );
}

#[test]
fn date_count_distributions_match_heterogeneous_platform() {
    let platform = Platform::power_law(200, 1.0, 3.0, 9);
    let a = oracle_samples(&platform, 400, 3);
    let b = distributed_samples(&platform, 400, 4);
    let r = ks_two_sample(&a, &b);
    assert!(
        r.accepts(0.001),
        "heterogeneous: oracle vs distributed diverge: D={:.4} p={:.5}",
        r.statistic,
        r.p_value
    );
}

#[test]
fn both_forms_respect_capacity() {
    let platform = Platform::power_law(150, 1.2, 4.0, 5);
    let selector = UniformSelector::new(platform.n());

    let svc = DatingService::new(&platform, &selector);
    let mut rng = SmallRng::seed_from_u64(6);
    for _ in 0..50 {
        let out = svc.run_round(&mut rng);
        verify_dates(&platform, &out.dates).expect("oracle violated capacity");
    }

    let r = run_distributed(platform.clone(), selector, 50, 7);
    for dates in &r.per_cycle_dates {
        verify_dates(&platform, dates).expect("distributed violated capacity");
    }
}

#[test]
fn distributed_transport_is_lossless() {
    // Every arranged date's payload must arrive, every request answered.
    let n = 250u64;
    let cycles = 20u64;
    let r = run_distributed(
        Platform::unit(n as usize),
        UniformSelector::new(n as usize),
        cycles,
        8,
    );
    let dates: u64 = r.dates_per_cycle.iter().sum();
    assert_eq!(r.payloads_received, dates);
    assert_eq!(r.answers_received, 2 * n * cycles);
}
