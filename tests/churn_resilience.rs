//! Churn resilience: the dating service is stateless across rounds, so
//! crashed matchmakers only cost their in-flight requests — the property
//! that §1 motivates ("dynamics of the networks, also node failures").

use rendezvous::core::{verify_dates, DistributedDating, Platform, UniformSelector};
use rendezvous::sim::{ChurnSchedule, Engine, EngineConfig, NodeId};

fn run_with_churn(
    n: usize,
    cycles: u64,
    churn: ChurnSchedule,
    seed: u64,
) -> Vec<Vec<rendezvous::core::Date>> {
    let platform = Platform::unit(n);
    let protocol = DistributedDating::new(platform, UniformSelector::new(n), cycles);
    let mut engine = Engine::new(
        n,
        protocol,
        EngineConfig {
            churn,
            ..EngineConfig::seeded(seed)
        },
    );
    engine.run_rounds(3 * cycles + 1);
    engine.into_protocol().per_cycle_dates().to_vec()
}

#[test]
fn dating_continues_through_crashes() {
    let n = 200;
    let cycles = 12u64;
    // Crash 20 nodes over the first half of the run.
    let mut churn = ChurnSchedule::none();
    for i in 0..20u32 {
        churn = churn.fail_at(i as u64, NodeId(i + 1));
    }
    let per_cycle = run_with_churn(n, cycles, churn, 1);
    assert_eq!(per_cycle.len() as u64, cycles);
    for (c, dates) in per_cycle.iter().enumerate() {
        assert!(
            dates.len() as f64 > 0.064 * (n as f64 - 25.0),
            "cycle {c}: only {} dates under churn",
            dates.len()
        );
    }
    // Dates arranged after the crashes never involve dead matchmakers
    // (dead nodes receive nothing, so they cannot matchmake).
    let last = per_cycle.last().expect("cycles ran");
    for d in last {
        assert!(d.matchmaker.0 == 0 || d.matchmaker.0 > 20);
    }
}

#[test]
fn recovery_restores_full_throughput() {
    let n = 150;
    let cycles = 10u64;
    // Node 1..=30 down for cycles 0-4, back for 5+ (engine rounds = 3×cycle).
    let mut churn = ChurnSchedule::none();
    for i in 1..=30u32 {
        churn = churn.fail_at(0, NodeId(i)).recover_at(14, NodeId(i));
    }
    let per_cycle = run_with_churn(n, cycles, churn, 2);
    let early: f64 = per_cycle[1..4].iter().map(|c| c.len() as f64).sum::<f64>() / 3.0;
    let late: f64 = per_cycle[6..9].iter().map(|c| c.len() as f64).sum::<f64>() / 3.0;
    assert!(
        late > early,
        "throughput should rise after recovery: early {early}, late {late}"
    );
}

#[test]
fn capacity_holds_under_churn() {
    let n = 100;
    let platform = Platform::unit(n);
    let churn = ChurnSchedule::random_crashes(n, 15, 20, Some(NodeId(0)), 3);
    let per_cycle = run_with_churn(n, 8, churn, 4);
    for dates in &per_cycle {
        verify_dates(&platform, dates).expect("capacity violated under churn");
    }
}
