//! Integration tests for the event-driven continuous-time executor:
//! lane-count invariance of the event trace, agreement between the
//! `Scenario` front door and a hand-driven [`EventExecutor`], the
//! completion-time distribution of asynchronous PUSH&PULL against its
//! synchronous counterpart, and a property test that the pending-buffer
//! parking never reorders same-destination messages.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::Rng;
use rendezvous::prelude::*;
use rendezvous::runtime::{Outbox, RoundObs, RunReport, Verdict};
use rendezvous::stats::ks_two_sample;

const ASYNC_WORKLOADS: [Spreader; 5] = [
    Spreader::Push,
    Spreader::Pull,
    Spreader::PushPull,
    Spreader::FairPull,
    Spreader::FairPushPull,
];

fn async_run(
    spreader: Spreader,
    n: usize,
    lanes: usize,
    seed: u64,
) -> RunReport<AsyncSpreadSummary> {
    let mut proto = AsyncSpread::new(n, NodeId(0), spreader);
    EventExecutor::with_lanes(1.0, lanes).run(&mut proto, n, &RunConfig::seeded(seed))
}

// ---------------------------------------------------------------------
// Determinism matrix: the event trace is a pure function of the seed,
// whatever the wake-queue partitioning.

#[test]
fn event_traces_are_bit_identical_across_lane_counts() {
    let n = 300;
    for spreader in ASYNC_WORKLOADS {
        for seed in [1u64, 0xBEEF] {
            let reference = async_run(spreader, n, 1, seed);
            assert!(reference.completed, "{spreader} seed {seed}");
            for lanes in [2usize, 8] {
                let run = async_run(spreader, n, lanes, seed);
                assert_eq!(
                    reference.digests, run.digests,
                    "{spreader} seed {seed}: event trace diverged at {lanes} lanes"
                );
                assert_eq!(reference.rounds, run.rounds, "{spreader} event count");
                assert_eq!(reference.stats, run.stats, "{spreader} net stats");
                assert_eq!(reference.output, run.output, "{spreader} output");
                assert_eq!(reference.time, run.time, "{spreader} time axis");
            }
        }
    }
}

#[test]
fn scenario_continuous_agrees_with_hand_driven_executor() {
    let n = 300;
    let seed = 0xDA7E;
    let scenario = Scenario::new(n)
        .protocol(Spreader::PushPull)
        .time_model(TimeModel::Continuous { rate: 1.0 });
    let via_scenario = scenario.run(seed).expect("valid scenario");
    let direct = async_run(Spreader::PushPull, n, 1, seed);
    assert_eq!(via_scenario.digests, direct.digests);
    assert_eq!(via_scenario.rounds, direct.rounds);
    assert_eq!(via_scenario.stats, direct.stats);
    assert_eq!(
        via_scenario.output.as_ref().and_then(|o| o.async_spread()),
        direct.output.as_ref()
    );
    match via_scenario.time {
        TimeAxis::SimSeconds { seconds, events } => {
            assert!(seconds > 0.0);
            assert_eq!(events, via_scenario.rounds);
        }
        TimeAxis::Rounds(_) => panic!("continuous run must report simulated time"),
    }
}

// ---------------------------------------------------------------------
// Completion-time distribution: asynchronous PUSH&PULL against
// synchronous PUSH&PULL at matched expected rates (one wake per node
// per unit of simulated time vs one round per unit time). The sync
// sample's support is a handful of integers (rounds) while the async
// sample is continuous, so a direct two-sample KS between them is
// inconsistent by construction — its D statistic is dominated by the
// discrete CDF jumps, not by any real disagreement. The comparison is
// therefore split: calibrated mean/dispersion bands pin async against
// sync, and the KS shape check pins the async distribution itself via
// the exponential clock's time-rescaling law (doubling every wake rate
// must exactly halve completion time, in distribution).

const KS_N: usize = 200;
const KS_TRIALS: u64 = 100;

fn async_samples(rate_scale: u64, seed: u64) -> Vec<f64> {
    (0..KS_TRIALS)
        .map(|t| {
            let mut proto = AsyncSpread::new(KS_N, NodeId(0), Spreader::PushPull);
            let r = EventExecutor::new(rate_scale as f64).run(
                &mut proto,
                KS_N,
                &RunConfig::seeded(seed ^ (t << 8)),
            );
            assert!(r.completed);
            r.output.as_ref().expect("output").seconds() * rate_scale as f64
        })
        .collect()
}

#[test]
fn async_push_pull_completion_time_tracks_sync_at_matched_rates() {
    let sync_scenario = Scenario::new(KS_N).protocol(Spreader::PushPull);
    let sync: Vec<f64> = (0..KS_TRIALS)
        .map(|t| {
            let r = sync_scenario.run(0x5EED ^ (t << 8)).expect("valid");
            assert!(r.completed);
            r.expect_output().spread().expect("spread").cycles as f64
        })
        .collect();
    let asynch = async_samples(1, 0x5EED);
    // Matched rates: both means are Θ(log n) time units; asynchrony
    // costs a bounded constant factor (independent exponential wakes
    // instead of a lockstep barrier), and stays concentrated — the
    // relative spread remains small at n = 200.
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let sd = |v: &[f64]| {
        let m = mean(v);
        (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (v.len() as f64 - 1.0)).sqrt()
    };
    let ratio = mean(&asynch) / mean(&sync);
    assert!(
        (1.0..4.0).contains(&ratio),
        "async/sync completion-time ratio {ratio:.2} out of the expected constant band"
    );
    let cv = sd(&asynch) / mean(&asynch);
    assert!(
        cv < 0.25,
        "async completion time not concentrated: cv = {cv:.3}"
    );
}

#[test]
fn async_completion_distribution_obeys_time_rescaling() {
    // The distributional pin: completion seconds at wake rate 2/s,
    // rescaled by 2, must be KS-indistinguishable from completion
    // seconds at rate 1/s (independent seeds, so the samples are
    // independent draws from what must be one distribution).
    let base = async_samples(1, 0xAB1E);
    let doubled = async_samples(2, 0xC0FFEE);
    let r = ks_two_sample(&base, &doubled);
    assert!(
        r.accepts(0.001),
        "rate-rescaled async completion times diverge: D={:.4} p={:.5}",
        r.statistic,
        r.p_value,
    );
}

// ---------------------------------------------------------------------
// FIFO parking property: messages from one source to one destination
// are delivered in send order, whatever the wake interleaving.

/// A probe protocol: every wake sends 1–3 messages carrying a strictly
/// increasing per-`(src, dst)` counter; every delivery checks the
/// counter from that source increased. Any reordering (or duplication)
/// in the pending-buffer parking shows up as a violation.
struct OrderProbe {
    n: usize,
    max_events: u64,
}

struct ProbeNode {
    sent: Vec<u64>,
    seen: Vec<u64>,
    violations: u64,
}

impl AsyncProtocol for OrderProbe {
    type Node = ProbeNode;
    type Msg = u64;
    type Output = u64;

    fn init_node(&self, _id: NodeId, _rng: &mut SmallRng) -> ProbeNode {
        ProbeNode {
            sent: vec![0; self.n],
            seen: vec![0; self.n],
            violations: 0,
        }
    }

    fn on_wake(
        &self,
        node: &mut ProbeNode,
        _id: NodeId,
        _now_ticks: u64,
        rng: &mut SmallRng,
        out: &mut Outbox<'_, u64>,
    ) {
        for _ in 0..rng.gen_range(1..4u32) {
            let dst = rng.gen_range(0..self.n as u32);
            node.sent[dst as usize] += 1;
            out.send(NodeId(dst), node.sent[dst as usize]);
        }
    }

    fn on_message(
        &self,
        node: &mut ProbeNode,
        _id: NodeId,
        from: NodeId,
        msg: u64,
        _now_ticks: u64,
        _rng: &mut SmallRng,
        _out: &mut Outbox<'_, u64>,
    ) {
        if msg <= node.seen[from.0 as usize] {
            node.violations += 1;
        } else {
            node.seen[from.0 as usize] = msg;
        }
    }

    fn observe_node(&self, node: &ProbeNode, _id: NodeId, obs: &mut RoundObs) {
        obs.count += node.violations;
        obs.digest ^= node.violations.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finalize(&mut self, obs: &RoundObs, _now_ticks: u64, events: u64) -> Verdict<u64> {
        if events >= self.max_events {
            Verdict::Halt(obs.count)
        } else {
            Verdict::Continue
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn parked_messages_are_never_reordered(
        seed in 0u64..1_000_000,
        (n, lanes) in (4usize..48, 1usize..6),
    ) {
        let cfg = RunConfig::seeded(seed).max_rounds(40);
        let mut probe = OrderProbe { n, max_events: 25 * n as u64 };
        let exec = EventExecutor::with_lanes(1.0, lanes);
        let report = exec.run(&mut probe, n, &cfg);
        prop_assert!(report.completed);
        prop_assert_eq!(report.output, Some(0), "same-destination messages reordered");

        // And the trace itself is lane-invariant for the probe too.
        let mut again = OrderProbe { n, max_events: 25 * n as u64 };
        let single = EventExecutor::new(1.0).run(&mut again, n, &cfg);
        prop_assert_eq!(single.digests, report.digests);
    }
}
