//! Lemma 3 verification: conditioned on the number of dates `k`, the
//! dating service's date set is a **uniform** random `k`-matching of
//! `K_{Bout,Bin}`.
//!
//! On the unit platform the bandwidth units are the nodes themselves, so
//! for `n = 3` and `k = 2` the date set is a 2-matching of `K_{3,3}`:
//! `C(3,2)²·2! = 18` equally likely matchings. We collect rounds with
//! exactly two dates, chi-square the observed matching frequencies
//! against uniform, and cross-check marginals against the reference
//! sampler `uniform_k_matching`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rendezvous::core::matching::{canonical_matching, uniform_k_matching};
use rendezvous::prelude::*;
use rendezvous::stats::{chi_square_gof, Hypergeometric};
use std::collections::HashMap;

fn collect_conditional_matchings(
    n: usize,
    k: usize,
    target_samples: usize,
    seed: u64,
) -> HashMap<Vec<(u32, u32)>, u64> {
    let platform = Platform::unit(n);
    let selector = UniformSelector::new(n);
    let svc = DatingService::new(&platform, &selector);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ws = RoundWorkspace::new(n);
    let mut counts: HashMap<Vec<(u32, u32)>, u64> = HashMap::new();
    let mut collected = 0usize;
    let mut guard = 0usize;
    while collected < target_samples {
        guard += 1;
        assert!(guard < 200 * target_samples, "conditioning starved");
        let out = svc.run_round_with(&mut ws, &mut rng);
        if out.date_count() != k {
            continue;
        }
        let pairs: Vec<(u32, u32)> = out
            .dates
            .iter()
            .map(|d| (d.sender.0, d.receiver.0))
            .collect();
        *counts.entry(canonical_matching(pairs)).or_insert(0) += 1;
        collected += 1;
    }
    counts
}

#[test]
fn conditional_date_set_is_uniform_k_matching() {
    let n = 3;
    let k = 2;
    let samples = 36_000;
    let counts = collect_conditional_matchings(n, k, samples, 0x13);

    // All 18 matchings must appear…
    assert_eq!(
        counts.len(),
        18,
        "some 2-matchings of K_{{3,3}} never occurred"
    );

    // …with uniform frequencies (chi-square at a generous alpha, since
    // this is a single pre-seeded draw, not a repeated test).
    let observed: Vec<u64> = counts.values().copied().collect();
    let expected = vec![samples as f64 / 18.0; observed.len()];
    let r = chi_square_gof(&observed, &expected, 0);
    assert!(
        r.p_value > 0.001,
        "chi-square rejects uniformity: stat={:.1} dof={} p={:.5}",
        r.statistic,
        r.dof,
        r.p_value
    );
}

#[test]
fn reference_sampler_agrees_with_service() {
    // The reference sampler (used in proofs/tests elsewhere) and the
    // dating service must put the same mass on each canonical matching.
    let n = 3;
    let k = 2;
    let samples = 18_000;
    let svc_counts = collect_conditional_matchings(n, k, samples, 0x14);

    let mut rng = SmallRng::seed_from_u64(0x15);
    let mut ref_counts: HashMap<Vec<(u32, u32)>, u64> = HashMap::new();
    for _ in 0..samples {
        let m = canonical_matching(uniform_k_matching(n, n, k, &mut rng));
        *ref_counts.entry(m).or_insert(0) += 1;
    }
    assert_eq!(ref_counts.len(), 18);

    // Compare the two empirical distributions category by category: each
    // difference should be within 5 joint standard deviations.
    for (matching, &c_ref) in &ref_counts {
        let c_svc = svc_counts.get(matching).copied().unwrap_or(0);
        let p = 1.0 / 18.0;
        let sd = (2.0 * samples as f64 * p * (1.0 - p)).sqrt();
        let diff = (c_ref as f64 - c_svc as f64).abs();
        assert!(
            diff < 5.0 * sd,
            "matching {matching:?}: service {c_svc} vs reference {c_ref} (sd {sd:.1})"
        );
    }
}

#[test]
fn per_link_date_counts_follow_hypergeometric() {
    // Lemma 3's consequence: conditional on k dates, the number of dates
    // whose sender lies in a fixed set S of outgoing links is
    // hypergeometric (k, Bout, |S|). Unit platform, S = {nodes 0, 1}.
    let n = 8;
    let k = 3;
    let s_size = 2u64;
    let platform = Platform::unit(n);
    let selector = UniformSelector::new(n);
    let svc = DatingService::new(&platform, &selector);
    let mut rng = SmallRng::seed_from_u64(0x16);
    let mut ws = RoundWorkspace::new(n);
    let h = Hypergeometric::new(n as u64, s_size, k as u64);

    let samples = 30_000;
    let mut observed = vec![0u64; (h.support_max() + 1) as usize];
    let mut collected = 0;
    while collected < samples {
        let out = svc.run_round_with(&mut ws, &mut rng);
        if out.date_count() != k {
            continue;
        }
        let hits = out
            .dates
            .iter()
            .filter(|d| d.sender.0 < s_size as u32)
            .count();
        observed[hits] += 1;
        collected += 1;
    }
    let expected: Vec<f64> = (0..observed.len())
        .map(|x| h.pmf(x as u64) * samples as f64)
        .collect();
    let r = chi_square_gof(&observed, &expected, 0);
    assert!(
        r.p_value > 0.001,
        "hypergeometric law rejected: p={:.5} observed={observed:?}",
        r.p_value
    );
}
