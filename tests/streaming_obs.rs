//! Streaming-observation equivalence: the per-shard [`RoundObs`]
//! reduction must be indistinguishable from the legacy whole-slice
//! `finalize`/`digest` path for every registry workload.
//!
//! The harness wraps each workload in [`SlicePath`], a delegating
//! adapter that leaves `streams()` at its `false` default so executors
//! take the legacy coordinator scan, and compares the wrapped run
//! against the native streaming run — digest trace, round count,
//! message statistics and final output — on the sequential executor and
//! on the sharded executor at 1, 2 and 8 shards, under ideal, lossy,
//! latency-spread and churned conditions alike. A property sweep then
//! drives random `(seed, n, conditions, churn)` combinations through
//! all eight workloads.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rendezvous::prelude::*;
use rendezvous::runtime::{
    Conditions, LatencyDist, Outbox, RoundProtocol, RtDatingSpread, RtFairPull, RtFairPushPull,
    RtPull, RtPush, RtPushPull, Verdict,
};

/// Force the legacy slice path: delegate every [`RoundProtocol`] hook
/// to the inner protocol except the streaming quartet, which stays at
/// the trait defaults (`streams() == false`).
struct SlicePath<P>(P);

impl<P: RoundProtocol> RoundProtocol for SlicePath<P> {
    type Node = P::Node;
    type Msg = P::Msg;
    type Output = P::Output;

    fn init_node(&self, id: NodeId, rng: &mut SmallRng) -> Self::Node {
        self.0.init_node(id, rng)
    }

    fn on_round_start(
        &self,
        node: &mut Self::Node,
        id: NodeId,
        round: u64,
        rng: &mut SmallRng,
        out: &mut Outbox<'_, Self::Msg>,
    ) {
        self.0.on_round_start(node, id, round, rng, out);
    }

    fn on_message(
        &self,
        node: &mut Self::Node,
        id: NodeId,
        from: NodeId,
        msg: Self::Msg,
        round: u64,
        rng: &mut SmallRng,
        out: &mut Outbox<'_, Self::Msg>,
    ) {
        self.0.on_message(node, id, from, msg, round, rng, out);
    }

    fn on_round_end(
        &self,
        node: &mut Self::Node,
        id: NodeId,
        round: u64,
        rng: &mut SmallRng,
        out: &mut Outbox<'_, Self::Msg>,
    ) {
        self.0.on_round_end(node, id, round, rng, out);
    }

    fn finalize(&mut self, nodes: &[Self::Node], round: u64) -> Verdict<Self::Output> {
        self.0.finalize(nodes, round)
    }

    fn digest(&self, nodes: &[Self::Node], round: u64) -> u64 {
        self.0.digest(nodes, round)
    }

    fn msg_bytes(&self, msg: &Self::Msg) -> usize {
        self.0.msg_bytes(msg)
    }

    fn node_mem_bytes(&self, node: &Self::Node) -> usize {
        self.0.node_mem_bytes(node)
    }
}

const SHARDS: [usize; 3] = [1, 2, 8];

/// Run `make()`'s protocol natively (streaming) and through
/// [`SlicePath`] (legacy), on every executor, and demand bit-identical
/// reports across the whole matrix.
fn assert_streaming_matches_slice<P, F>(label: &str, make: F, n: usize, cfg: &RunConfig)
where
    P: RoundProtocol,
    P::Output: PartialEq + std::fmt::Debug + Clone,
    F: Fn() -> P,
{
    assert!(
        make().streams(),
        "{label}: registry workloads must opt into streaming"
    );
    let mut native = make();
    let reference = SequentialExecutor.run(&mut native, n, cfg);

    let mut wrapped = SlicePath(make());
    let slice = SequentialExecutor.run(&mut wrapped, n, cfg);
    assert_eq!(
        reference.digests, slice.digests,
        "{label}: seq digest trace"
    );
    assert_eq!(reference.rounds, slice.rounds, "{label}: seq rounds");
    assert_eq!(reference.stats, slice.stats, "{label}: seq stats");
    assert_eq!(reference.output, slice.output, "{label}: seq output");
    assert_eq!(reference.node_bytes, slice.node_bytes, "{label}: seq bytes");

    for shards in SHARDS {
        let mut native = make();
        let sh = ShardedExecutor::new(shards).run(&mut native, n, cfg);
        assert_eq!(
            reference.digests, sh.digests,
            "{label}: sharded({shards}) streaming digest trace"
        );
        assert_eq!(
            reference.stats, sh.stats,
            "{label}: sharded({shards}) stats"
        );
        assert_eq!(
            reference.output, sh.output,
            "{label}: sharded({shards}) output"
        );

        let mut wrapped = SlicePath(make());
        let shw = ShardedExecutor::new(shards).run(&mut wrapped, n, cfg);
        assert_eq!(
            reference.digests, shw.digests,
            "{label}: sharded({shards}) slice digest trace"
        );
        assert_eq!(
            reference.output, shw.output,
            "{label}: sharded({shards}) slice output"
        );
    }
}

/// All eight registry workloads through the full matrix.
fn check_all_workloads(n: usize, cycles: u64, cfg: &RunConfig) {
    assert_streaming_matches_slice(
        "dating",
        || RuntimeDating::new(Platform::unit(n), UniformSelector::new(n), cycles),
        n,
        cfg,
    );
    assert_streaming_matches_slice("push", || RtPush::new(n, NodeId(0)), n, cfg);
    assert_streaming_matches_slice("pull", || RtPull::new(n, NodeId(1)), n, cfg);
    assert_streaming_matches_slice("push-pull", || RtPushPull::new(n, NodeId(0)), n, cfg);
    assert_streaming_matches_slice("fair-pull", || RtFairPull::new(n, NodeId(2)), n, cfg);
    assert_streaming_matches_slice(
        "fair-push-pull",
        || RtFairPushPull::new(n, NodeId(0)),
        n,
        cfg,
    );
    assert_streaming_matches_slice(
        "dating-spread",
        || RtDatingSpread::new(Platform::unit(n), UniformSelector::new(n), NodeId(0)),
        n,
        cfg,
    );
    assert_streaming_matches_slice(
        "lossy-dating",
        || RtDatingSpread::with_loss(Platform::unit(n), UniformSelector::new(n), NodeId(0), 0.15),
        n,
        cfg,
    );
}

#[test]
fn streaming_equals_slice_under_ideal_conditions() {
    let cfg = RunConfig::seeded(0x0B5).max_rounds(400);
    check_all_workloads(120, 4, &cfg);
}

#[test]
fn streaming_equals_slice_under_loss_and_churn() {
    let cfg = RunConfig::seeded(0x0B6)
        .max_rounds(300)
        .conditions(Conditions::with_loss(0.1))
        .churn(Churn::intermittent(0.05));
    check_all_workloads(90, 3, &cfg);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random `(seed, n, loss, latency, churn)` combinations: the
    /// streaming reduction and the slice scan must stay bit-identical
    /// for every workload and shard count.
    #[test]
    fn streaming_equals_slice_everywhere(
        seed in any::<u64>(),
        n in 40usize..140,
        lossy in any::<bool>(),
        spread_latency in any::<bool>(),
        churned in any::<bool>(),
    ) {
        let conditions = Conditions {
            drop_prob: if lossy { 0.1 } else { 0.0 },
            latency: if spread_latency {
                LatencyDist::Uniform { min: 1, max: 3 }
            } else {
                LatencyDist::Fixed(1)
            },
        };
        let churn = if churned {
            Churn::intermittent(0.05)
        } else {
            Churn::none()
        };
        let cfg = RunConfig::seeded(seed)
            .max_rounds(250)
            .conditions(conditions)
            .churn(churn);
        check_all_workloads(n, 3, &cfg);
    }
}
