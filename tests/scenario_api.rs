//! Acceptance tests for the `Scenario` builder — the runtime's one
//! front door.
//!
//! 1. **Cross-executor equivalence**: every registry workload (dating
//!    service + all seven Figure-2 spreaders), run through the builder,
//!    produces bit-identical `RunReport`s on `SequentialExecutor` and
//!    `ShardedExecutor` (k ∈ {2, 7}) — with and without churn.
//! 2. **Statistical fidelity**: each runtime spreader's legacy-equivalent
//!    round count (`SpreadRunSummary::cycles`) is drawn from the same
//!    distribution as its centralized `rendez_gossip` counterpart,
//!    checked with the workspace KS harness.
//! 3. **Typed validation**: nonsense configurations come back as
//!    `ScenarioError`s, not mid-run panics.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rendezvous::gossip::{
    run_spread, DatingSpread, FairPull, FairPushPull, LossyDating, Pull, Push, PushPull,
    SpreadProtocol,
};
use rendezvous::prelude::*;
use rendezvous::runtime::{Conditions, LatencyDist};
use rendezvous::stats::ks_two_sample;

/// Bit-identity across the whole report, not just the output.
fn assert_identical(
    a: &rendezvous::runtime::ScenarioReport,
    b: &rendezvous::runtime::ScenarioReport,
    tag: &str,
) {
    assert_eq!(a.rounds, b.rounds, "{tag}: rounds");
    assert_eq!(a.completed, b.completed, "{tag}: completion");
    assert_eq!(a.digests, b.digests, "{tag}: digest trace");
    assert_eq!(a.stats, b.stats, "{tag}: message accounting");
    assert_eq!(a.output, b.output, "{tag}: output");
}

#[test]
fn every_workload_is_executor_independent_with_and_without_churn() {
    let n = 400;
    let churns = [
        ("none", Churn::none()),
        ("intermittent", Churn::intermittent(0.15)),
        ("crash-stop", Churn::crash_stop(0.1, 30)),
    ];
    for spreader in Spreader::ALL {
        for (churn_tag, churn) in churns {
            // Crash-stopped nodes can never learn the rumor, so churned
            // spreading runs are capped instead of run to completion.
            let scenario = Scenario::new(n)
                .protocol(spreader)
                .cycles(12)
                .churn(churn)
                .max_rounds(240);
            let seq = scenario.run(0xACC).expect("valid scenario");
            for k in [2, 7] {
                let sh = scenario
                    .clone()
                    .sharded(k)
                    .run(0xACC)
                    .expect("valid scenario");
                assert_identical(&seq, &sh, &format!("{spreader}/{churn_tag}/k={k}"));
            }
        }
    }
}

#[test]
fn conditioned_scenarios_are_executor_independent() {
    // Loss + latency + churn together, still bit-identical.
    let scenario = Scenario::new(300)
        .protocol(Spreader::FairPushPull)
        .conditions(Conditions {
            drop_prob: 0.1,
            latency: LatencyDist::Uniform { min: 1, max: 2 },
        })
        .churn(Churn::intermittent(0.1))
        .max_rounds(2_000);
    let seq = scenario.run(0xC0).expect("valid scenario");
    assert!(seq.stats.dropped > 0, "loss must bite");
    assert!(seq.stats.churn_lost > 0, "churn must bite");
    for k in [2, 7] {
        let sh = scenario
            .clone()
            .sharded(k)
            .run(0xC0)
            .expect("valid scenario");
        assert_identical(&seq, &sh, &format!("conditioned/k={k}"));
    }
}

// ---------------------------------------------------------------------
// KS agreement: runtime cycles vs legacy rounds, per spreader.

const KS_N: usize = 200;
const KS_TRIALS: u64 = 100;

fn legacy_samples<'a, F>(mk: F, seed: u64) -> Vec<f64>
where
    F: Fn(usize) -> Box<dyn SpreadProtocol + 'a>,
{
    let platform = Platform::unit(KS_N);
    (0..KS_TRIALS)
        .map(|t| {
            let mut rng = SmallRng::seed_from_u64(seed ^ (t << 8));
            let mut proto = mk(KS_N);
            let r = run_spread(&mut *proto, &platform, NodeId(0), &mut rng, 100_000);
            assert!(r.completed);
            r.rounds as f64
        })
        .collect()
}

fn runtime_samples(spreader: Spreader, loss: f64, seed: u64) -> Vec<f64> {
    let scenario = Scenario::new(KS_N).protocol(spreader).loss(loss);
    (0..KS_TRIALS)
        .map(|t| {
            let r = scenario.run(seed ^ (t << 8)).expect("valid scenario");
            assert!(r.completed, "{spreader} trial {t} did not complete");
            r.expect_output().spread().expect("spreading").cycles as f64
        })
        .collect()
}

fn assert_ks_agreement(spreader: Spreader, legacy: Vec<f64>, runtime: Vec<f64>) {
    let r = ks_two_sample(&legacy, &runtime);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        r.accepts(0.001),
        "{spreader}: runtime cycles diverge from legacy rounds: D={:.4} p={:.5} \
         (legacy mean {:.2}, runtime mean {:.2})",
        r.statistic,
        r.p_value,
        mean(&legacy),
        mean(&runtime),
    );
}

#[test]
fn ks_push_matches_legacy() {
    assert_ks_agreement(
        Spreader::Push,
        legacy_samples(|_| Box::new(Push::new()), 0x11),
        runtime_samples(Spreader::Push, 0.0, 0x21),
    );
}

#[test]
fn ks_pull_matches_legacy() {
    assert_ks_agreement(
        Spreader::Pull,
        legacy_samples(|_| Box::new(Pull::new()), 0x12),
        runtime_samples(Spreader::Pull, 0.0, 0x22),
    );
}

#[test]
fn ks_push_pull_matches_legacy() {
    assert_ks_agreement(
        Spreader::PushPull,
        legacy_samples(|_| Box::new(PushPull::new()), 0x13),
        runtime_samples(Spreader::PushPull, 0.0, 0x23),
    );
}

#[test]
fn ks_fair_pull_matches_legacy() {
    assert_ks_agreement(
        Spreader::FairPull,
        legacy_samples(|n| Box::new(FairPull::new(n)), 0x14),
        runtime_samples(Spreader::FairPull, 0.0, 0x24),
    );
}

#[test]
fn ks_fair_push_pull_matches_legacy() {
    assert_ks_agreement(
        Spreader::FairPushPull,
        legacy_samples(|n| Box::new(FairPushPull::new(n)), 0x15),
        runtime_samples(Spreader::FairPushPull, 0.0, 0x25),
    );
}

#[test]
fn ks_dating_matches_legacy() {
    let selector = UniformSelector::new(KS_N);
    assert_ks_agreement(
        Spreader::Dating,
        legacy_samples(|_| Box::new(DatingSpread::new(&selector)), 0x16),
        runtime_samples(Spreader::Dating, 0.0, 0x26),
    );
}

#[test]
fn ks_lossy_dating_matches_legacy() {
    let selector = UniformSelector::new(KS_N);
    assert_ks_agreement(
        Spreader::LossyDating,
        legacy_samples(|_| Box::new(LossyDating::new(&selector, 0.3)), 0x17),
        runtime_samples(Spreader::LossyDating, 0.3, 0x27),
    );
}

// ---------------------------------------------------------------------
// Typed validation at the front door.

#[test]
fn builder_rejects_nonsense_without_panicking() {
    assert!(matches!(
        Scenario::new(1).run(0),
        Err(ScenarioError::TooFewNodes { n: 1 })
    ));
    assert!(matches!(
        Scenario::new(50).platform(Platform::unit(49)).run(0),
        Err(ScenarioError::PlatformMismatch { .. })
    ));
    assert!(matches!(
        Scenario::new(50).selector(UniformSelector::new(51)).run(0),
        Err(ScenarioError::SelectorMismatch { .. })
    ));
    assert!(matches!(
        Scenario::new(50)
            .protocol(Spreader::Push)
            .source(NodeId(50))
            .run(0),
        Err(ScenarioError::SourceOutOfRange { .. })
    ));
    let err = Scenario::new(50)
        .protocol_named("smoke-signals")
        .unwrap_err();
    assert!(err.to_string().contains("smoke-signals"));
}

#[test]
fn registry_names_drive_the_builder() {
    for spreader in Spreader::ALL {
        let report = Scenario::new(80)
            .protocol_named(spreader.name())
            .expect("registry name resolves")
            .cycles(3)
            .run(5)
            .expect("valid scenario");
        assert!(report.completed, "{spreader}");
    }
}

// ---------------------------------------------------------------------
// TimeModel API: the redesigned time axis end to end, and the pinned
// rounds-case JSON schema.

#[test]
fn time_model_is_the_one_axis_for_executor_choice() {
    let n = 400;
    let base = Scenario::new(n).protocol(Spreader::PushPull);
    let seq = base
        .clone()
        .time_model(TimeModel::Rounds(ExecChoice::Sequential))
        .run(9)
        .expect("valid");
    let sh = base
        .clone()
        .time_model(TimeModel::Rounds(ExecChoice::Sharded(3)))
        .run(9)
        .expect("valid");
    assert_eq!(seq.digests, sh.digests, "rounds executors share one trace");
    assert_eq!(seq.time, TimeAxis::Rounds(seq.rounds));

    let cont = base
        .time_model(TimeModel::Continuous { rate: 1.0 })
        .run(9)
        .expect("valid");
    assert!(cont.completed);
    assert!(matches!(cont.time, TimeAxis::SimSeconds { .. }));
    assert!(cont
        .output
        .as_ref()
        .and_then(|o| o.async_spread())
        .is_some());
}

#[test]
fn sharded_sugar_is_equivalent_to_explicit_time_model() {
    // The deprecated `executor()`/`auto_executor()` shims are pinned by
    // in-file tests next to their definitions in `scenario.rs`; external
    // code (this file included) is swept onto `time_model()` and kept
    // clean by rendez-lint's deprecated-shim rule.
    let n = 400;
    let base = Scenario::new(n).protocol(Spreader::Push);
    let via_sugar = base.clone().sharded(2).run(4);
    let via_axis = base
        .time_model(TimeModel::Rounds(ExecChoice::Sharded(2)))
        .run(4);
    assert_eq!(
        via_sugar.expect("valid").digests,
        via_axis.expect("valid").digests
    );
}

#[test]
fn rounds_sweep_json_is_pinned_to_the_pre_time_model_schema() {
    // Byte-level pin: a default (rounds-only) sweep must render exactly
    // the schema emitted before the time-model axis existed — no
    // "time_model" key anywhere, same header and per-cell field order.
    use rendezvous::fleet::SweepSpec;
    let spec = SweepSpec::new()
        .ns(vec![16])
        .protocols(vec![Spreader::Push])
        .trials(2)
        .seed(12)
        .cycles(10);
    let json = rendezvous::fleet::Fleet::new(1)
        .run(&spec)
        .expect("sweep runs")
        .to_json();
    assert!(
        !json.contains("time_model"),
        "rounds cells must not grow keys"
    );
    assert!(json.starts_with(
        "{\n  \"schema\": \"rendez-fleet/sweep-v1\",\n  \"seed\": 12,\n  \
         \"trials_per_cell\": 2,\n  \"trials_per_job\": 16,\n  \"cells\": [\n"
    ));
    assert!(json.contains(
        "    {\"index\": 0, \"n\": 16, \"protocol\": \"push\", \"churn\": 0.0, \
         \"loss\": 0.0, \"trials\": 2, \"completed\": 2,\n"
    ));
    for key in [
        "\"value\": {",
        "\"rounds\": {",
        "\"sent\": {",
        "\"delivered\": {",
    ] {
        assert!(json.contains(key), "missing metric {key}");
    }
    assert!(json.ends_with("  ]\n}\n"));
}
